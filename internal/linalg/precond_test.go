package linalg

import (
	"errors"
	"math"
	"testing"
)

// chainTrips stamps a local tridiagonal chain (diag 4, off-diagonal −1)
// onto the global indices of a block.
func chainTrips(b Block) []Coord {
	var trips []Coord
	for k := 0; k < b.Len; k++ {
		i := b.Start + k*b.Stride
		trips = append(trips, Coord{i, i, 4})
		if k > 0 {
			j := b.Start + (k-1)*b.Stride
			trips = append(trips, Coord{i, j, -1}, Coord{j, i, -1})
		}
	}
	return trips
}

// TestBlockJacobiExactOnBlockDiagonal: when the matrix IS block diagonal
// over the given blocks, Apply must be an exact solve — including for a
// strided (interleaved) block layout like the crossbar's column chains.
func TestBlockJacobiExactOnBlockDiagonal(t *testing.T) {
	blocks := []Block{{Start: 0, Stride: 2, Len: 3}, {Start: 1, Stride: 2, Len: 3}}
	var trips []Coord
	for _, b := range blocks {
		trips = append(trips, chainTrips(b)...)
	}
	a, err := NewCSR(6, trips)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewBlockJacobi(a, blocks, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind() != "block-jacobi" {
		t.Fatalf("Kind = %q", p.Kind())
	}
	r := []float64{1, -2, 3, 0.5, -1, 2}
	z := make([]float64, 6)
	p.Apply(r, z, nil)
	// Residual of the exact solve must vanish.
	az := a.MulVec(z, nil)
	for i := range az {
		if math.Abs(az[i]-r[i]) > 1e-12 {
			t.Fatalf("A·z ≠ r at %d: %v vs %v", i, az[i], r[i])
		}
	}
}

// TestBlockJacobiRefresh: after the matrix values change, Refresh must track
// them without rebuilding the pattern mapping.
func TestBlockJacobiRefresh(t *testing.T) {
	blocks := []Block{{Start: 0, Stride: 1, Len: 4}}
	trips := chainTrips(blocks[0])
	a, err := NewCSR(4, trips)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewBlockJacobi(a, blocks, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Strengthen the diagonal and refresh.
	for i := range trips {
		if trips[i].Row == trips[i].Col {
			trips[i].Val = 10
		}
	}
	if err := a.UpdateValues(trips); err != nil {
		t.Fatal(err)
	}
	if err := p.Refresh(a, nil); err != nil {
		t.Fatal(err)
	}
	r := []float64{1, 2, 3, 4}
	z := make([]float64, 4)
	p.Apply(r, z, nil)
	az := a.MulVec(z, nil)
	for i := range az {
		if math.Abs(az[i]-r[i]) > 1e-12 {
			t.Fatalf("refreshed A·z ≠ r at %d: %v vs %v", i, az[i], r[i])
		}
	}
}

// TestBlockJacobiValidation: blocks must partition the index set exactly.
func TestBlockJacobiValidation(t *testing.T) {
	a, err := NewCSR(4, chainTrips(Block{Start: 0, Stride: 1, Len: 4}))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		blocks []Block
	}{
		{"overlap", []Block{{0, 1, 3}, {2, 1, 2}}},
		{"gap", []Block{{0, 1, 2}, {3, 1, 1}}},
		{"out of range", []Block{{0, 1, 5}}},
		{"zero len", []Block{{0, 1, 0}, {0, 1, 4}}},
	}
	for _, tc := range cases {
		if _, err := NewBlockJacobi(a, tc.blocks, 1, nil); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

// TestBlockJacobiCutsIterations: on a crossbar-like matrix — strong
// tridiagonal chains weakly coupled to each other — block-Jacobi CG must
// converge in far fewer iterations than diagonal Jacobi.
func TestBlockJacobiCutsIterations(t *testing.T) {
	const chains, length = 8, 8
	n := chains * length
	blocks := make([]Block, chains)
	var trips []Coord
	for c := 0; c < chains; c++ {
		blocks[c] = Block{Start: c * length, Stride: 1, Len: length}
		for k := 0; k < length; k++ {
			i := c*length + k
			trips = append(trips, Coord{i, i, 0.8}) // wire-scale diagonal
			if k > 0 {
				trips = append(trips, Coord{i, i - 1, -0.4}, Coord{i - 1, i, -0.4})
			}
			// Weak cell coupling to the matching node of the next chain.
			if c+1 < chains {
				j := (c+1)*length + k
				g := 1e-5
				trips = append(trips,
					Coord{i, j, -g}, Coord{j, i, -g},
					Coord{i, i, g}, Coord{j, j, g})
			}
		}
	}
	a, err := NewCSR(n, trips)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(float64(i + 1))
	}
	xj, itJac, err := SolveCG(a, b, nil, CGOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewBlockJacobi(a, blocks, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	xb, itBlk, err := SolveCG(a, b, nil, CGOptions{Tol: 1e-10, Precond: p})
	if err != nil {
		t.Fatal(err)
	}
	for i := range xb {
		if math.Abs(xb[i]-xj[i]) > 1e-7*(1+math.Abs(xj[i])) {
			t.Fatalf("solutions disagree at %d: %v vs %v", i, xb[i], xj[i])
		}
	}
	if itBlk*3 > itJac {
		t.Fatalf("block-jacobi took %d iters, jacobi %d — expected ≥3× reduction", itBlk, itJac)
	}
}

// TestSolveCGPrecondAccounting: a custom preconditioner must land its
// factorizations and applies in the op counters.
func TestSolveCGPrecondAccounting(t *testing.T) {
	blocks := []Block{{Start: 0, Stride: 1, Len: 6}}
	a, err := NewCSR(6, chainTrips(blocks[0]))
	if err != nil {
		t.Fatal(err)
	}
	var ops OpCount
	p, err := NewBlockJacobi(a, blocks, 1, &ops)
	if err != nil {
		t.Fatal(err)
	}
	if ops.BandFactorizations != 1 {
		t.Fatalf("BandFactorizations = %d after build, want 1", ops.BandFactorizations)
	}
	b := []float64{1, 0, 2, 0, 3, 0}
	_, it, err := SolveCG(a, b, nil, CGOptions{Tol: 1e-12, Precond: p, Ops: &ops})
	if err != nil {
		t.Fatal(err)
	}
	if it < 1 {
		t.Fatalf("iterations = %d", it)
	}
	// Setup apply plus one per non-final iteration.
	if ops.PrecondApplies < int64(it) {
		t.Fatalf("PrecondApplies = %d over %d iterations", ops.PrecondApplies, it)
	}
}

// TestSolveCGZeroRHSWithWarmStart: b = 0 has the unique solution x = 0; a
// non-nil x0 must not be echoed back (the pre-fix behaviour).
func TestSolveCGZeroRHSWithWarmStart(t *testing.T) {
	a, err := NewCSR(3, chainTrips(Block{Start: 0, Stride: 1, Len: 3}))
	if err != nil {
		t.Fatal(err)
	}
	x0 := []float64{1, -2, 3}
	x, it, err := SolveCG(a, make([]float64, 3), x0, CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if it != 0 {
		t.Fatalf("iterations = %d, want 0", it)
	}
	for i, v := range x {
		if v != 0 {
			t.Fatalf("x[%d] = %v, want 0 (x0 echoed back?)", i, v)
		}
	}
	// x0 itself must be untouched.
	if x0[0] != 1 || x0[1] != -2 || x0[2] != 3 {
		t.Fatalf("x0 mutated: %v", x0)
	}
}

// TestSolveCGBreakdownOnIndefinite: CG on an indefinite matrix hits
// p·Ap ≤ 0; the solver must return a typed breakdown error rather than
// silently producing NaNs or spinning to MaxIter.
func TestSolveCGBreakdownOnIndefinite(t *testing.T) {
	a, err := NewCSR(2, []Coord{{0, 0, 1}, {1, 1, -1}})
	if err != nil {
		t.Fatal(err)
	}
	x, _, err := SolveCG(a, []float64{0, 1}, nil, CGOptions{MaxIter: 50})
	if err == nil {
		t.Fatal("indefinite solve succeeded")
	}
	var bd *BreakdownError
	if !errors.As(err, &bd) {
		t.Fatalf("err = %v (%T), want *BreakdownError", err, err)
	}
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("breakdown must satisfy errors.Is(err, ErrNoConvergence); got %v", err)
	}
	if bd.PAp > 0 {
		t.Fatalf("PAp = %v, want ≤ 0", bd.PAp)
	}
	for i, v := range x {
		if math.IsNaN(v) {
			t.Fatalf("x[%d] is NaN — breakdown leaked into the iterate", i)
		}
	}
}

// TestSolveCGWarmStartPerturbed: a warm start from a nearby operating point
// must reach the same answer as a cold start, in no more iterations, and an
// already-converged x0 must be returned bit-unchanged in zero iterations.
func TestSolveCGWarmStartPerturbed(t *testing.T) {
	blocks := []Block{{Start: 0, Stride: 1, Len: 32}}
	trips := chainTrips(blocks[0])
	a, err := NewCSR(32, trips)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 32)
	for i := range b {
		b[i] = math.Cos(float64(i))
	}
	opt := CGOptions{Tol: 1e-11}
	xCold, itCold, err := SolveCG(a, b, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Perturb the system slightly (as a Newton restamp would).
	for i := range trips {
		if trips[i].Row == trips[i].Col {
			trips[i].Val = 4.01
		}
	}
	if err := a.UpdateValues(trips); err != nil {
		t.Fatal(err)
	}
	xCold2, itCold2, err := SolveCG(a, b, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	xWarm, itWarm, err := SolveCG(a, b, xCold, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xWarm {
		if math.Abs(xWarm[i]-xCold2[i]) > 1e-8*(1+math.Abs(xCold2[i])) {
			t.Fatalf("warm/cold disagree at %d: %v vs %v", i, xWarm[i], xCold2[i])
		}
	}
	if itWarm > itCold2 {
		t.Fatalf("warm start took %d iters, cold %d", itWarm, itCold2)
	}
	_ = itCold
	// Re-solving from the converged answer is a bit-identical no-op.
	xAgain, itAgain, err := SolveCG(a, b, xWarm, opt)
	if err != nil {
		t.Fatal(err)
	}
	if itAgain != 0 {
		t.Fatalf("re-solve from converged point took %d iters", itAgain)
	}
	for i := range xAgain {
		if math.Float64bits(xAgain[i]) != math.Float64bits(xWarm[i]) {
			t.Fatalf("re-solve not bit-identical at %d", i)
		}
	}
}
