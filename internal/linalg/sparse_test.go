package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestCSRAssemblySumsDuplicates(t *testing.T) {
	trips := []Coord{{0, 0, 1}, {0, 0, 2}, {1, 1, 5}, {0, 1, -1}}
	m, err := NewCSR(2, trips)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.at(0, 0); got != 3 {
		t.Errorf("(0,0) = %v, want 3", got)
	}
	if got := m.at(0, 1); got != -1 {
		t.Errorf("(0,1) = %v, want -1", got)
	}
	if got := m.at(1, 0); got != 0 {
		t.Errorf("(1,0) = %v, want 0", got)
	}
}

func TestCSRRejectsBadInput(t *testing.T) {
	if _, err := NewCSR(0, nil); err == nil {
		t.Error("dimension 0 should fail")
	}
	if _, err := NewCSR(2, []Coord{{2, 0, 1}}); err == nil {
		t.Error("out-of-range row should fail")
	}
	if _, err := NewCSR(2, []Coord{{0, -1, 1}}); err == nil {
		t.Error("negative col should fail")
	}
}

func TestCSRMulVec(t *testing.T) {
	m, err := NewCSR(3, []Coord{{0, 0, 2}, {1, 1, 3}, {2, 0, 1}, {2, 2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	y := m.MulVec([]float64{1, 2, 3}, nil)
	want := []float64{2, 6, 13}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("MulVec = %v, want %v", y, want)
		}
	}
}

func TestCSREmptyRow(t *testing.T) {
	// Row 1 has no entries; RowPtr must still be consistent.
	m, err := NewCSR(3, []Coord{{0, 0, 1}, {2, 2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	y := m.MulVec([]float64{5, 6, 7}, nil)
	if y[0] != 5 || y[1] != 0 || y[2] != 7 {
		t.Fatalf("MulVec = %v", y)
	}
}

func TestCSRUpdateValues(t *testing.T) {
	trips := []Coord{{0, 0, 1}, {0, 0, 1}, {1, 1, 2}}
	m, err := NewCSR(2, trips)
	if err != nil {
		t.Fatal(err)
	}
	trips[0].Val = 5
	trips[1].Val = 5
	trips[2].Val = 7
	if err := m.UpdateValues(trips); err != nil {
		t.Fatal(err)
	}
	if m.at(0, 0) != 10 || m.at(1, 1) != 7 {
		t.Fatalf("after update: (0,0)=%v (1,1)=%v", m.at(0, 0), m.at(1, 1))
	}
	if err := m.UpdateValues(trips[:1]); err == nil {
		t.Fatal("pattern mismatch should fail")
	}
}

func TestDiagonal(t *testing.T) {
	m, err := NewCSR(3, []Coord{{0, 0, 4}, {1, 2, 9}, {2, 2, 6}})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Diagonal()
	if d[0] != 4 || d[1] != 0 || d[2] != 6 {
		t.Fatalf("Diagonal = %v", d)
	}
}

// randomSPD builds a random symmetric diagonally dominant sparse matrix.
func randomSPD(n int, rng *rand.Rand) (*CSR, []Coord) {
	var trips []Coord
	rowSum := make([]float64, n)
	for i := 0; i < n; i++ {
		for k := 0; k < 3; k++ {
			j := rng.Intn(n)
			if j == i {
				continue
			}
			v := -math.Abs(rng.NormFloat64())
			trips = append(trips, Coord{i, j, v}, Coord{j, i, v})
			rowSum[i] += -v
			rowSum[j] += -v
		}
	}
	for i := 0; i < n; i++ {
		trips = append(trips, Coord{i, i, rowSum[i] + 1 + rng.Float64()})
	}
	m, err := NewCSR(n, trips)
	if err != nil {
		panic(err)
	}
	return m, trips
}

func TestSolveCGRandomSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		n := 10 + rng.Intn(200)
		m, _ := randomSPD(n, rng)
		if !m.IsSymmetric(1e-12) {
			t.Fatal("test matrix should be symmetric")
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, iters, err := SolveCG(m, b, nil, CGOptions{})
		if err != nil {
			t.Fatalf("trial %d (n=%d): %v", trial, n, err)
		}
		if iters <= 0 {
			t.Fatalf("trial %d: reported %d iterations", trial, iters)
		}
		r := m.MulVec(x, nil)
		for i := range r {
			r[i] -= b[i]
		}
		if Norm2(r) > 1e-8*(1+Norm2(b)) {
			t.Fatalf("trial %d: residual %v", trial, Norm2(r))
		}
	}
}

func TestSolveCGZeroRHS(t *testing.T) {
	m, _ := NewCSR(2, []Coord{{0, 0, 1}, {1, 1, 1}})
	x, iters, err := SolveCG(m, []float64{0, 0}, nil, CGOptions{})
	if err != nil || iters != 0 {
		t.Fatalf("zero rhs: %v, %d", err, iters)
	}
	if x[0] != 0 || x[1] != 0 {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveCGWarmStart(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, _ := randomSPD(100, rng)
	b := make([]float64, 100)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x, coldIters, err := SolveCG(m, b, nil, CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, warmIters, err := SolveCG(m, b, x, CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if warmIters > coldIters {
		t.Fatalf("warm start took %d iters, cold %d", warmIters, coldIters)
	}
}

func TestSolveCGErrors(t *testing.T) {
	m, _ := NewCSR(2, []Coord{{0, 0, 1}, {1, 1, 1}})
	if _, _, err := SolveCG(m, []float64{1}, nil, CGOptions{}); err == nil {
		t.Error("short rhs should fail")
	}
	zeroDiag, _ := NewCSR(2, []Coord{{0, 1, 1}, {1, 0, 1}})
	if _, _, err := SolveCG(zeroDiag, []float64{1, 1}, nil, CGOptions{}); err == nil {
		t.Error("zero diagonal should fail")
	}
	if _, _, err := SolveCG(m, []float64{1, 1}, nil, CGOptions{MaxIter: 0, Tol: 1e-30}); err != nil {
		// MaxIter 0 defaults to 10N which is plenty for identity.
		t.Errorf("identity solve failed: %v", err)
	}
}

func TestIsSymmetric(t *testing.T) {
	sym, _ := NewCSR(2, []Coord{{0, 1, 2}, {1, 0, 2}, {0, 0, 1}, {1, 1, 1}})
	if !sym.IsSymmetric(0) {
		t.Error("symmetric matrix reported asymmetric")
	}
	asym, _ := NewCSR(2, []Coord{{0, 1, 2}, {1, 0, 3}, {0, 0, 1}, {1, 1, 1}})
	if asym.IsSymmetric(1e-12) {
		t.Error("asymmetric matrix reported symmetric")
	}
}
