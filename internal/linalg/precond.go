package linalg

import "fmt"

// Preconditioner supplies z ≈ A⁻¹·r to SolveCG. Implementations must be
// symmetric positive definite (a CG requirement), deterministic, and apply
// with r and z non-aliased. An implementation is confined to one goroutine
// at a time, like every other solver structure in this package.
type Preconditioner interface {
	// Apply computes z = M⁻¹·r. A non-nil ops accumulates the apply's
	// operation counts; accounting is observational only.
	Apply(r, z []float64, ops *OpCount)
	// Kind names the preconditioner for diagnostics ("jacobi",
	// "block-jacobi", ...).
	Kind() string
}

// jacobiPrecond is the classic diagonal preconditioner — the SolveCG
// fallback when no structure-aware preconditioner is supplied.
type jacobiPrecond struct {
	inv []float64
}

// newJacobiPrecond inverts the matrix diagonal. The diagonal scan and
// inversion are charged to ops exactly as the historical in-line Jacobi
// path did, keeping the documented CG accounting contract intact.
func newJacobiPrecond(a *CSR, ops *OpCount) (*jacobiPrecond, error) {
	diag := a.Diagonal()
	ops.CountBytes(16 * int64(len(a.Vals))) // diagonal scan over Vals + ColIdx
	inv := make([]float64, a.N)
	for i, d := range diag {
		if d == 0 {
			return nil, fmt.Errorf("linalg: zero diagonal at %d, Jacobi preconditioner undefined", i)
		}
		inv[i] = 1 / d
	}
	ops.CountVecOp(a.N, 1) // diagonal inversion
	return &jacobiPrecond{inv: inv}, nil
}

func (p *jacobiPrecond) Apply(r, z []float64, ops *OpCount) {
	for i := range z {
		z[i] = p.inv[i] * r[i]
	}
	ops.CountVecOp(len(z), 1)
	ops.CountPrecondApply()
}

func (p *jacobiPrecond) Kind() string { return "jacobi" }

// Block describes one strided index set of a matrix: the global indices
// Start + k·Stride for k ∈ [0, Len). The crossbar MNA ordering makes every
// row wire chain a contiguous block (stride 1) and every column wire chain
// a strided one (stride N), both tridiagonal in their local index.
type Block struct {
	Start, Stride, Len int
}

// BlockJacobi is a structure-aware block-diagonal preconditioner: the
// matrix restricted to each block (within bandwidth bw of the block-local
// diagonal) is factored by banded Cholesky, and Apply solves each block
// independently. For crossbar conductance matrices the blocks are the
// row/column wire chains, which carry the strong (wire) coupling; the
// weak cell coupling between chains is all that CG has left to iterate on.
type BlockJacobi struct {
	n      int
	bw     int
	blocks []Block
	// band is the concatenated band storage of every block; block b owns
	// band[off[b] : off[b]+Len·(bw+1)] and is refactored in place.
	band []float64
	off  []int
	// valIdx maps each band slot to its position in the source CSR's Vals
	// (−1 where the sparsity pattern has no entry), so Refresh is a gather
	// with no search.
	valIdx []int32
	chols  []*BandChol
	// scratch is the gather buffer for strided blocks.
	scratch []float64
}

// NewBlockJacobi builds the block preconditioner for a: the blocks must
// partition [0, a.N) exactly (every index in exactly one block). The
// sparsity-pattern positions are located once here; the value gather and
// factorisation happen in Refresh, which New calls before returning.
func NewBlockJacobi(a *CSR, blocks []Block, bw int, ops *OpCount) (*BlockJacobi, error) {
	if bw < 0 {
		return nil, fmt.Errorf("linalg: negative block bandwidth %d", bw)
	}
	covered := make([]bool, a.N)
	maxLen, total := 0, 0
	for bi, b := range blocks {
		if b.Len <= 0 || b.Stride <= 0 || b.Start < 0 {
			return nil, fmt.Errorf("linalg: invalid block %d: %+v", bi, b)
		}
		last := b.Start + (b.Len-1)*b.Stride
		if last >= a.N {
			return nil, fmt.Errorf("linalg: block %d reaches index %d outside %d", bi, last, a.N)
		}
		for k := 0; k < b.Len; k++ {
			i := b.Start + k*b.Stride
			if covered[i] {
				return nil, fmt.Errorf("linalg: blocks overlap at index %d", i)
			}
			covered[i] = true
		}
		if b.Len > maxLen {
			maxLen = b.Len
		}
		total += b.Len
	}
	if total != a.N {
		return nil, fmt.Errorf("linalg: blocks cover %d of %d indices", total, a.N)
	}
	w1 := bw + 1
	p := &BlockJacobi{
		n: a.N, bw: bw, blocks: blocks,
		band:    make([]float64, total*w1),
		off:     make([]int, len(blocks)),
		valIdx:  make([]int32, total*w1),
		chols:   make([]*BandChol, len(blocks)),
		scratch: make([]float64, maxLen),
	}
	pos := 0
	for bi, b := range blocks {
		p.off[bi] = pos
		for k := 0; k < b.Len; k++ {
			i := b.Start + k*b.Stride
			for d := 0; d <= bw; d++ {
				slot := pos + k*w1 + bw - d
				if d > k {
					p.valIdx[slot] = -1
					continue
				}
				j := b.Start + (k-d)*b.Stride
				p.valIdx[slot] = int32(a.findPos(i, j))
			}
		}
		pos += b.Len * w1
	}
	if err := p.Refresh(a, ops); err != nil {
		return nil, err
	}
	return p, nil
}

// Refresh re-gathers the block entries from the (re-stamped) matrix and
// refactors every block in place. The matrix must keep the sparsity
// pattern it had at NewBlockJacobi time.
func (p *BlockJacobi) Refresh(a *CSR, ops *OpCount) error {
	if a.N != p.n {
		return fmt.Errorf("linalg: preconditioner built for %d unknowns, matrix has %d", p.n, a.N)
	}
	for s, vi := range p.valIdx {
		if vi < 0 {
			p.band[s] = 0
			continue
		}
		p.band[s] = a.Vals[vi]
	}
	ops.CountBytes(20 * int64(len(p.band))) // valIdx + source + band write
	w1 := p.bw + 1
	for bi, b := range p.blocks {
		seg := p.band[p.off[bi] : p.off[bi]+b.Len*w1]
		f, err := p.chols[bi].Refactor(b.Len, p.bw, seg, ops)
		if err != nil {
			return fmt.Errorf("linalg: block %d (start %d stride %d len %d): %w",
				bi, b.Start, b.Stride, b.Len, err)
		}
		p.chols[bi] = f
	}
	return nil
}

// Apply solves each block independently: z = blockdiag(A)⁻¹·r.
//
// Called once per CG iteration; the gather/scatter buffer is the
// preallocated p.scratch, so the whole apply is allocation-free.
//
//lint:hotpath
func (p *BlockJacobi) Apply(r, z []float64, ops *OpCount) {
	for bi, b := range p.blocks {
		buf := p.scratch[:b.Len]
		if b.Stride == 1 {
			copy(buf, r[b.Start:b.Start+b.Len])
			p.chols[bi].SolveInPlace(buf, ops)
			copy(z[b.Start:b.Start+b.Len], buf)
			continue
		}
		for k := 0; k < b.Len; k++ {
			buf[k] = r[b.Start+k*b.Stride]
		}
		p.chols[bi].SolveInPlace(buf, ops)
		for k := 0; k < b.Len; k++ {
			z[b.Start+k*b.Stride] = buf[k]
		}
	}
	ops.CountBytes(32 * int64(p.n)) // gather + scatter traffic
	ops.CountPrecondApply()
}

func (p *BlockJacobi) Kind() string { return "block-jacobi" }

// findPos returns the position of element (i,j) in the CSR value array, or
// −1 when the pattern has no such entry. Column indices are sorted within
// a row, so the scan is a short ordered walk.
func (m *CSR) findPos(i, j int) int {
	for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
		switch {
		case m.ColIdx[k] == j:
			return k
		case m.ColIdx[k] > j:
			return -1
		}
	}
	return -1
}
