package linalg

// Operation-cost accounting for the numerical kernels. An OpCount is an
// allocation-free accumulator of what a solve actually did — floating-point
// operations, kernel invocations, bytes streamed through memory,
// factorizations — so callers can attribute solve cost to phases without
// timers (the clock-free invariant of this package) and bit-identically
// across runs (the replay contract: counting only observes, it never
// touches a float in the computation).
//
// Every Count* method is safe on a nil receiver and does nothing there, so
// kernels thread a possibly-nil *OpCount through unconditionally; the
// disabled path costs one pointer test per kernel call.
//
// The accounting contract, which the analytic tests assert against:
//
//   - CountSpMV(nnz, n): one CSR matrix-vector product. 2·nnz flops
//     (multiply-add per stored element); 24·nnz bytes (value, column index,
//     gathered x element) plus 16·n bytes (row pointer, y store).
//   - CountDot(n): one inner product. 2·n flops, 16·n bytes.
//   - CountNorm(n): one Euclidean norm — a self inner product (counted in
//     Dots) plus the square root. 2·n+1 flops, 8·n bytes.
//   - CountAxpy(n): one y += α·x. 2·n flops, 24·n bytes.
//   - CountVecOp(n, flopsPer): one streaming elementwise pass over
//     length-n vectors at flopsPer flops per element, 24·n bytes (two
//     reads, one write) — the preconditioner apply and direction update.
//   - CountFactorLU(n): one dense LU factorization with partial pivoting,
//     its exact inner-loop flop count Σ_{j=1}^{n-1} (j + 2·j²), 16·n² bytes.
//   - CountLUSolve(n): one forward+back substitution pair, 2·n²−n flops,
//     16·n² bytes.
//   - CountBandFactor(n, bw): one banded Cholesky factorization, its exact
//     inner-loop flop count Σ_{i=0}^{n-1} (min(i,bw)+1)² (each row i does
//     (w+1)² multiply-subtract/divide/sqrt ops at effective bandwidth
//     w = min(i,bw)); 16·n·(bw+1) bytes.
//   - CountBandSolve(n, bw): one banded forward+back substitution pair,
//     2·(2·Σ_{i=0}^{n-1} min(i,bw) + n) flops, 16·n·(bw+1) + 32·n bytes.
//   - CountPrecondApply(): one whole-preconditioner application (the
//     per-kind arithmetic is charged by the kernels it invokes; this only
//     bumps the invocation counter).
type OpCount struct {
	// Flops is the floating-point operation count (adds, multiplies,
	// divides, and square roots each count one; see the package cost model
	// for transcendental device evaluations, which callers count
	// explicitly).
	Flops int64 `json:"flops"`
	// SpMVs counts sparse matrix-vector products.
	SpMVs int64 `json:"spmvs,omitempty"`
	// Dots counts inner products (norms included: a norm is a self-dot).
	Dots int64 `json:"dots,omitempty"`
	// Axpys counts y += α·x vector updates.
	Axpys int64 `json:"axpys,omitempty"`
	// Bytes is the modeled memory traffic of the counted kernels.
	Bytes int64 `json:"bytes,omitempty"`
	// Factorizations counts dense LU factorizations.
	Factorizations int64 `json:"factorizations,omitempty"`
	// BandFactorizations counts banded Cholesky factorizations (one per
	// preconditioner block per refresh).
	BandFactorizations int64 `json:"band_factorizations,omitempty"`
	// PrecondApplies counts whole-preconditioner applications (one per
	// preconditioned CG iteration plus the setup apply).
	PrecondApplies int64 `json:"precond_applies,omitempty"`
}

// Add folds another accumulator into o; nil-safe on both sides.
func (o *OpCount) Add(other *OpCount) {
	if o == nil || other == nil {
		return
	}
	o.Flops += other.Flops
	o.SpMVs += other.SpMVs
	o.Dots += other.Dots
	o.Axpys += other.Axpys
	o.Bytes += other.Bytes
	o.Factorizations += other.Factorizations
	o.BandFactorizations += other.BandFactorizations
	o.PrecondApplies += other.PrecondApplies
}

// CountSpMV records one CSR sparse matrix-vector product with nnz stored
// elements over an n-vector.
func (o *OpCount) CountSpMV(nnz, n int) {
	if o == nil {
		return
	}
	o.SpMVs++
	o.Flops += 2 * int64(nnz)
	o.Bytes += 24*int64(nnz) + 16*int64(n)
}

// CountDot records one length-n inner product.
func (o *OpCount) CountDot(n int) {
	if o == nil {
		return
	}
	o.Dots++
	o.Flops += 2 * int64(n)
	o.Bytes += 16 * int64(n)
}

// CountNorm records one length-n Euclidean norm (a self-dot plus a square
// root).
func (o *OpCount) CountNorm(n int) {
	if o == nil {
		return
	}
	o.Dots++
	o.Flops += 2*int64(n) + 1
	o.Bytes += 8 * int64(n)
}

// CountAxpy records one length-n y += α·x update.
func (o *OpCount) CountAxpy(n int) {
	if o == nil {
		return
	}
	o.Axpys++
	o.Flops += 2 * int64(n)
	o.Bytes += 24 * int64(n)
}

// CountVecOp records one streaming elementwise pass over length-n vectors
// at flopsPer flops per element (two reads and one write per element).
func (o *OpCount) CountVecOp(n int, flopsPer int64) {
	if o == nil {
		return
	}
	o.Flops += flopsPer * int64(n)
	o.Bytes += 24 * int64(n)
}

// CountFlops records raw flops with no associated memory traffic — scalar
// recurrences like α = rz/p·Ap.
func (o *OpCount) CountFlops(n int64) {
	if o == nil {
		return
	}
	o.Flops += n
}

// CountBytes records raw memory traffic with no arithmetic — copies, the
// CSR diagonal scan, triplet assembly.
func (o *OpCount) CountBytes(n int64) {
	if o == nil {
		return
	}
	o.Bytes += n
}

// CountFactorLU records one n×n dense LU factorization with partial
// pivoting: the exact elimination flop count Σ_{j=1}^{n-1} (j + 2·j²)
// (one division plus one multiply-subtract pair per eliminated element).
func (o *OpCount) CountFactorLU(n int) {
	if o == nil {
		return
	}
	j := int64(n) - 1
	o.Factorizations++
	o.Flops += j*(j+1)/2 + j*(j+1)*(2*j+1)/3
	o.Bytes += 16 * int64(n) * int64(n)
}

// CountLUSolve records one forward+back substitution pair against an n×n
// factorization: 2·n²−n flops.
func (o *OpCount) CountLUSolve(n int) {
	if o == nil {
		return
	}
	nn := int64(n)
	o.Flops += 2*nn*nn - nn
	o.Bytes += 16 * nn * nn
}

// bandSumW is Σ_{i=0}^{n-1} min(i, bw) — the total off-diagonal count of a
// banded triangular factor.
func bandSumW(n, bw int) int64 {
	if bw > n-1 {
		bw = n - 1
	}
	b, nn := int64(bw), int64(n)
	return b*(b-1)/2 + b*(nn-b)
}

// CountBandFactor records one banded Cholesky factorization of dimension n
// and bandwidth bw: row i costs (min(i,bw)+1)² flops (its multiply-subtract
// pairs, divisions, and square root), summing to
// Σ_{i=0}^{min(bw,n-1)-1} (i+1)² + (n−bw)·(bw+1)² for n > bw.
func (o *OpCount) CountBandFactor(n, bw int) {
	if o == nil {
		return
	}
	o.BandFactorizations++
	w := bw
	if w > n-1 {
		w = n - 1
	}
	ww, nn := int64(w), int64(n)
	// Σ_{i=0}^{w-1} (i+1)² = w(w+1)(2w+1)/6, then (n−w) full-band rows.
	o.Flops += ww*(ww+1)*(2*ww+1)/6 + (nn-ww)*(ww+1)*(ww+1)
	o.Bytes += 16 * nn * int64(bw+1)
}

// CountBandSolve records one banded forward+back substitution pair:
// 2·(2·Σ min(i,bw) + n) flops.
func (o *OpCount) CountBandSolve(n, bw int) {
	if o == nil {
		return
	}
	o.Flops += 2 * (2*bandSumW(n, bw) + int64(n))
	o.Bytes += 16*int64(n)*int64(bw+1) + 32*int64(n)
}

// CountPrecondApply records one whole-preconditioner application; the
// arithmetic cost is charged by the kernels the apply invokes.
func (o *OpCount) CountPrecondApply() {
	if o == nil {
		return
	}
	o.PrecondApplies++
}
