package dse

import (
	"context"
	"path/filepath"
	"testing"

	"mnsim/internal/telemetry"
)

// An injected evaluation failure (Options.FailEval) must journal a
// candidate_eval event with outcome "eval_failed" while the rest of the
// sweep completes, and the surviving grid points still journal their own
// outcomes.
func TestExploreFailEvalJournaled(t *testing.T) {
	j := telemetry.DefaultJournal()
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	if err := j.Open(path); err != nil {
		t.Fatal(err)
	}
	defer func() {
		j.Close()
		j.Reset()
	}()
	cands, err := Explore(context.Background(), baseDesign(), largeLayer, smallSpace(),
		Options{ErrorLimit: 0.25, FailEval: "64:16:45"})
	if err != nil {
		t.Fatal(err)
	}
	// One of the 18 grid points was sacrificed to the injection.
	if len(cands) != 17 {
		t.Fatalf("got %d candidates, want 17", len(cands))
	}
	for _, c := range cands {
		if c.CrossbarSize == 64 && c.Parallelism == 16 && c.WireNode == 45 {
			t.Fatal("injected grid point still evaluated")
		}
	}
	j.Close()
	events, err := telemetry.ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var failed, evaluated int
	for _, ev := range events {
		if ev.Type != telemetry.EvCandidateEval {
			continue
		}
		switch ev.Data["outcome"] {
		case "eval_failed":
			failed++
			if ev.ID != "cand-64x16@45" {
				t.Errorf("failure event id %q, want cand-64x16@45", ev.ID)
			}
			if s, _ := ev.Data["err"].(string); s == "" {
				t.Error("failure event missing err")
			}
		case "ok", "infeasible":
			evaluated++
		}
	}
	if failed != 1 {
		t.Fatalf("%d eval_failed events, want 1", failed)
	}
	if evaluated != 17 {
		t.Fatalf("%d ok/infeasible events, want 17", evaluated)
	}
}

// A malformed FailEval spec fails the sweep up front; a spec naming a grid
// point outside the space injects nothing.
func TestFailEvalSpec(t *testing.T) {
	if _, err := Explore(context.Background(), baseDesign(), largeLayer, smallSpace(),
		Options{FailEval: "banana"}); err == nil {
		t.Error("malformed FailEval accepted")
	}
	cands, err := Explore(context.Background(), baseDesign(), largeLayer, smallSpace(),
		Options{FailEval: "7:7:7"})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 18 {
		t.Fatalf("out-of-space injection changed the sweep: %d candidates", len(cands))
	}
}
