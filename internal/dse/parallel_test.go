package dse

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"mnsim/internal/arch"
)

// stripEvalTime zeroes the wall-clock field so candidate lists can be
// compared across runs; EvalTime is the only nondeterministic field.
func stripEvalTime(cands []Candidate) []Candidate {
	out := make([]Candidate, len(cands))
	copy(out, cands)
	for i := range out {
		out[i].EvalTime = 0
	}
	return out
}

func TestExploreParallelDeterminism(t *testing.T) {
	base := baseDesign()
	want, err := Explore(context.Background(), base, largeLayer, smallSpace(), Options{ErrorLimit: 0.25, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ref := stripEvalTime(want)
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		got, err := Explore(context.Background(), base, largeLayer, smallSpace(), Options{ErrorLimit: 0.25, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(stripEvalTime(got), ref) {
			t.Errorf("workers=%d: candidate list differs from sequential run", workers)
		}
	}
}

func TestExploreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Explore(ctx, baseDesign(), largeLayer, smallSpace(), Options{ErrorLimit: 0.25, Workers: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestExploreToleratesEvalFailure verifies the sweep survives individual
// evaluation failures: the failing points are dropped (and counted), the
// rest of the grid is still returned.
func TestExploreToleratesEvalFailure(t *testing.T) {
	orig := evalCandidate
	defer func() { evalCandidate = orig }()
	evalCandidate = func(ctx context.Context, d *arch.Design, layers []arch.LayerDims, iface [2]int) (arch.Report, error) {
		if d.CrossbarSize == 64 {
			return arch.Report{}, fmt.Errorf("injected failure")
		}
		return orig(ctx, d, layers, iface)
	}
	cands, err := Explore(context.Background(), baseDesign(), largeLayer, smallSpace(), Options{ErrorLimit: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("sweep returned no candidates")
	}
	for _, c := range cands {
		if c.CrossbarSize == 64 {
			t.Fatalf("failing grid point (size 64) survived: %+v", c)
		}
	}
}

func TestExploreAllEvalFailed(t *testing.T) {
	orig := evalCandidate
	defer func() { evalCandidate = orig }()
	evalCandidate = func(ctx context.Context, d *arch.Design, layers []arch.LayerDims, iface [2]int) (arch.Report, error) {
		return arch.Report{}, fmt.Errorf("injected failure")
	}
	_, err := Explore(context.Background(), baseDesign(), largeLayer, smallSpace(), Options{ErrorLimit: 0.25})
	if err == nil {
		t.Fatal("want error when every buildable design fails evaluation")
	}
}

// TestBestWithSecondaryZeroOptimum regresses the zero-width tolerance
// window: when the primary optimum is exactly 0, metric*(1+tolerance)
// collapses to 0 and no near-tie could ever qualify for the secondary pass.
func TestBestWithSecondaryZeroOptimum(t *testing.T) {
	cands := []Candidate{
		{CrossbarSize: 8, Feasible: true,
			Report: arch.Report{AreaMM2: 0, EnergyPerSample: 5}},
		{CrossbarSize: 16, Feasible: true,
			Report: arch.Report{AreaMM2: 1e-12, EnergyPerSample: 1}},
		{CrossbarSize: 32, Feasible: true,
			Report: arch.Report{AreaMM2: 3, EnergyPerSample: 0.1}},
	}
	best := BestWithSecondary(cands, MinArea, MinEnergy, 0.2)
	if best == nil {
		t.Fatal("no candidate selected")
	}
	// The 1e-12-area candidate is within the epsilon window of the zero
	// optimum and has the better secondary metric, so it must win.
	if best.CrossbarSize != 16 {
		t.Fatalf("want the near-tied low-energy candidate (size 16), got size %d", best.CrossbarSize)
	}
}

// TestExploreEvalSpinNeutral: the synthetic per-candidate work must not
// change any evaluated result, only its cost.
func TestExploreEvalSpinNeutral(t *testing.T) {
	base := baseDesign()
	plain, err := Explore(context.Background(), base, largeLayer, smallSpace(), Options{ErrorLimit: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	spun, err := Explore(context.Background(), base, largeLayer, smallSpace(), Options{ErrorLimit: 0.25, EvalSpin: 5000, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripEvalTime(plain), stripEvalTime(spun)) {
		t.Error("EvalSpin changed the candidate list")
	}
}

// TestSpinDeterministic pins the busy-work mixer: same seed and rounds,
// same value — and it must actually depend on both.
func TestSpinDeterministic(t *testing.T) {
	if spin(42, 1000) != spin(42, 1000) {
		t.Error("spin is not deterministic")
	}
	if spin(42, 1000) == spin(43, 1000) {
		t.Error("spin ignores its seed")
	}
	if spin(42, 1000) == spin(42, 1001) {
		t.Error("spin ignores its round count")
	}
}

// BenchmarkExplore measures sweep scheduling. The behavioural models
// evaluate a design in ~1 µs — below goroutine handoff cost, so the bare
// sweep cannot show pool scaling. EvalSpin injects a deterministic ~20 µs
// of integer mixing per candidate (the cost of a small circuit-level
// validation solve) which makes the workers=1 vs workers=4 comparison a
// real measurement of the pool; spin work never changes the results.
func BenchmarkExplore(b *testing.B) {
	base := baseDesign()
	space := DefaultSpace()
	const spinRounds = 20000
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opt := Options{ErrorLimit: 0.25, Workers: workers, EvalSpin: spinRounds}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cands, err := Explore(context.Background(), base, largeLayer, space, opt)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(len(cands)), "candidates/op")
				}
			}
		})
	}
}
