package dse

import "testing"

func TestBestWithSecondary(t *testing.T) {
	cands := explore(t)
	primary := Best(cands, MaxAccuracy)
	// Within 20% of the best accuracy, pick the smallest area — the
	// paper's "secondary optimization target".
	tie := BestWithSecondary(cands, MaxAccuracy, MinArea, 0.20)
	if tie == nil {
		t.Fatal("no candidate")
	}
	if tie.Report.AreaMM2 > primary.Report.AreaMM2 {
		t.Fatalf("secondary target failed to improve area: %v vs %v", tie.Report.AreaMM2, primary.Report.AreaMM2)
	}
	// The tie-broken design still honours the tolerance on the primary.
	limit := MaxAccuracy.metric(primary) * 1.20
	if MaxAccuracy.metric(tie) > limit {
		t.Fatalf("secondary pick violates the primary tolerance: %v > %v", MaxAccuracy.metric(tie), limit)
	}
	// Zero tolerance degenerates to Best (possibly a different but
	// equally-good candidate).
	exact := BestWithSecondary(cands, MaxAccuracy, MinArea, 0)
	if exact == nil || MaxAccuracy.metric(exact) > MaxAccuracy.metric(primary) {
		t.Fatal("zero tolerance should keep the primary optimum")
	}
	// Negative tolerance clamps to zero rather than excluding the optimum.
	if BestWithSecondary(cands, MaxAccuracy, MinArea, -1) == nil {
		t.Fatal("negative tolerance should behave like zero")
	}
}

func TestBestWithSecondaryInfeasible(t *testing.T) {
	cands := explore(t)
	for i := range cands {
		cands[i].Feasible = false
	}
	if BestWithSecondary(cands, MinArea, MinEnergy, 0.1) != nil {
		t.Fatal("infeasible set should return nil")
	}
}
