// Package dse implements MNSIM's design-space exploration (Section VII.C/D
// of the paper): a traversal over crossbar size, computation parallelism
// degree, and interconnect technology node, with an error-rate constraint
// and per-metric optimal selection. The high simulation speed of the
// behaviour-level models makes exhaustive traversal practical ("All the
// 10,220 designs are simulated within 4 seconds").
package dse

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mnsim/internal/arch"
	"mnsim/internal/pool"
	"mnsim/internal/tech"
	"mnsim/internal/telemetry"
)

// Exploration telemetry: grid-point outcome counters plus a per-candidate
// evaluation-time histogram (microseconds). The paper's "10,220 designs in
// 4 seconds" claim is exactly the product of these two numbers.
var (
	telCandidates  = telemetry.GetCounter("mnsim_dse_candidates_total")
	telFeasible    = telemetry.GetCounter("mnsim_dse_candidates_feasible_total")
	telInfeasible  = telemetry.GetCounter("mnsim_dse_candidates_infeasible_total")
	telUnbuildable = telemetry.GetCounter("mnsim_dse_candidates_unbuildable_total")
	telEvalFailed  = telemetry.GetCounter("mnsim_dse_candidates_evalfailed_total")
	telEvalUS      = telemetry.GetHistogram("mnsim_dse_candidate_eval_us", telemetry.ExponentialBuckets(1, 4, 10))
)

// Space is the parameter grid to traverse.
type Space struct {
	// CrossbarSizes lists the crossbar dimensions to try.
	CrossbarSizes []int
	// Parallelisms lists the read-circuit counts p to try; values above a
	// candidate's column count are skipped for that size.
	Parallelisms []int
	// WireNodes lists interconnect technology nodes (nm).
	WireNodes []int
}

// DefaultSpace reproduces the paper's large-bank exploration ranges:
// crossbar size doubling from 4 to 1024, parallelism degree 1–128 plus the
// fully-parallel point, interconnect from {18,22,28,36,45} nm.
func DefaultSpace() Space {
	return Space{
		CrossbarSizes: []int{4, 8, 16, 32, 64, 128, 256, 512, 1024},
		Parallelisms:  []int{1, 2, 4, 8, 16, 32, 64, 128, 256},
		WireNodes:     []int{18, 22, 28, 36, 45},
	}
}

// Candidate is one evaluated design point.
type Candidate struct {
	CrossbarSize int
	Parallelism  int
	WireNode     int
	Report       arch.Report
	// Feasible is false when the design violates the error constraint; such
	// candidates are kept for trade-off plots but excluded from Best.
	Feasible bool
	// EvalTime is the wall time spent building and evaluating this design
	// point, from the dse.explore/candidate telemetry span.
	EvalTime time.Duration
}

// Objective selects the optimization target of Best (Tables IV/VI columns).
type Objective int

const (
	// MinArea minimises layout area.
	MinArea Objective = iota
	// MinEnergy minimises energy per input sample.
	MinEnergy
	// MinLatency minimises the pipeline-cycle latency.
	MinLatency
	// MaxAccuracy minimises the output error rate.
	MaxAccuracy
)

// String implements fmt.Stringer.
func (o Objective) String() string {
	switch o {
	case MinArea:
		return "Area"
	case MinEnergy:
		return "Energy"
	case MinLatency:
		return "Latency"
	case MaxAccuracy:
		return "Accuracy"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// Objectives lists the four case-study optimization targets in table order.
func Objectives() []Objective {
	return []Objective{MinArea, MinEnergy, MinLatency, MaxAccuracy}
}

// metric extracts the (to-be-minimised) objective value of a candidate.
func (o Objective) metric(c *Candidate) float64 {
	switch o {
	case MinArea:
		return c.Report.AreaMM2
	case MinEnergy:
		return c.Report.EnergyPerSample
	case MinLatency:
		return c.Report.PipelineCycle
	case MaxAccuracy:
		return math.Abs(c.Report.ErrorWorst)
	default:
		return math.NaN()
	}
}

// Options tunes an exploration run.
type Options struct {
	// ErrorLimit is the feasibility constraint on the worst-case output
	// error rate (the paper uses 25% for the large bank, 50% for VGG-16).
	ErrorLimit float64
	// Interface is the accelerator I/O line pair.
	Interface [2]int
	// Workers bounds the goroutines evaluating grid points concurrently;
	// <= 0 selects runtime.GOMAXPROCS(0). The candidate list is
	// index-addressed, so any worker count produces the exact sequential
	// output order.
	Workers int
	// EvalSpin adds deterministic synthetic work to every candidate
	// evaluation: the given number of integer-mix rounds (a splitmix64-style
	// finalizer) seeded from the grid point, folded into an atomic sink so
	// the loop cannot be optimised away. The behavioural models evaluate a
	// design in single-digit microseconds — below goroutine handoff cost —
	// so scheduling benchmarks (BenchmarkExplore) use this knob to give each
	// candidate a measurable, machine-independent cost. Zero disables it;
	// the spin never touches the evaluation result, so candidate lists are
	// bit-identical with and without it.
	EvalSpin int
	// FailEval injects one evaluation failure at the grid point named
	// "size:p:node" (e.g. "8:2:45") — a fault-injection hook so the
	// flight-recorder path (candidate_eval failure events, journal capture,
	// replay) can be exercised end-to-end without a degenerate design. An
	// unparsable spec fails the sweep; a spec naming a point outside the
	// space injects nothing.
	FailEval string
}

// failSpec is a parsed Options.FailEval grid point.
type failSpec struct{ size, p, node int }

func parseFailSpec(s string) (*failSpec, error) {
	if s == "" {
		return nil, nil
	}
	var f failSpec
	if _, err := fmt.Sscanf(s, "%d:%d:%d", &f.size, &f.p, &f.node); err != nil {
		return nil, fmt.Errorf("dse: bad FailEval spec %q, want size:p:node: %w", s, err)
	}
	return &f, nil
}

// errInjected tags Options.FailEval fault injections.
var errInjected = errors.New("injected evaluation failure")

// spinSink absorbs Options.EvalSpin results; an atomic package-level sink
// is the standard anti-elision anchor for synthetic busy work.
var spinSink atomic.Uint64

// spin runs the requested number of splitmix64 finalizer rounds over the
// seed: pure integer mixing with a loop-carried dependency, so the work is
// deterministic, unoptimisable, and takes the same time on every run.
func spin(seed uint64, rounds int) uint64 {
	x := seed
	for i := 0; i < rounds; i++ {
		x += 0x9e3779b97f4a7c15
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		x ^= x >> 31
	}
	return x
}

// candID is the journal correlation id of one grid point, e.g. "cand-8x2@45".
func candID(gp gridPoint) string {
	return fmt.Sprintf("cand-%dx%d@%d", gp.size, gp.p, gp.node)
}

// gridPoint is one (wire node, crossbar size, parallelism) tuple of the
// traversal, in sequential sweep order.
type gridPoint struct {
	size, p, node int
	wire          tech.WireTech
}

// errUnbuildable tags NewAccelerator failures (grid points outside the
// buildable space) apart from genuine evaluation failures.
var errUnbuildable = errors.New("unbuildable design point")

// evalCandidate builds and evaluates one accelerator; a package variable so
// tests can inject evaluation failures without constructing a degenerate
// design.
var evalCandidate = func(ctx context.Context, d *arch.Design, layers []arch.LayerDims, iface [2]int) (arch.Report, error) {
	a, err := arch.NewAccelerator(d, layers, iface)
	if err != nil {
		return arch.Report{}, fmt.Errorf("%w: %w", errUnbuildable, err)
	}
	return a.EvaluateContext(ctx)
}

// Explore traverses the space, evaluating one accelerator per grid point on
// a bounded worker pool (Options.Workers). The base design supplies
// everything except the three swept parameters. Grid points that cannot be
// built (e.g. a crossbar too small for one weight) are skipped silently —
// they are outside the feasible space. Grid points whose evaluation fails
// are counted (mnsim_dse_candidates_evalfailed_total), logged, and skipped;
// Explore only errors out when every buildable point fails. Cancelling ctx
// aborts the sweep (including mid-Newton-loop in any circuit-level solve)
// and returns the context's error.
func Explore(ctx context.Context, base arch.Design, layers []arch.LayerDims, space Space, opt Options) ([]Candidate, error) {
	if opt.ErrorLimit <= 0 {
		opt.ErrorLimit = 0.25
	}
	if opt.Interface == ([2]int{}) {
		opt.Interface = [2]int{128, 128}
	}
	if len(space.CrossbarSizes) == 0 || len(space.Parallelisms) == 0 || len(space.WireNodes) == 0 {
		return nil, fmt.Errorf("dse: empty exploration space")
	}
	inject, err := parseFailSpec(opt.FailEval)
	if err != nil {
		return nil, err
	}
	// Resolve every wire node up front: an unknown node is a caller mistake
	// that fails the whole sweep, not a skippable grid point.
	points := make([]gridPoint, 0, len(space.WireNodes)*len(space.CrossbarSizes)*len(space.Parallelisms))
	for _, node := range space.WireNodes {
		wire, err := tech.Interconnect(node)
		if err != nil {
			return nil, err
		}
		for _, size := range space.CrossbarSizes {
			for _, p := range space.Parallelisms {
				if p > size {
					continue
				}
				points = append(points, gridPoint{size: size, p: p, node: node, wire: wire})
			}
		}
	}
	ctx, sweep := telemetry.StartSpan(ctx, "dse.explore")
	defer sweep.End()
	// Live sweep progress: one tick per grid point, whatever its outcome,
	// so /progress and the -progress line show done/total and an ETA.
	prog := telemetry.StartPhase("dse.candidates", int64(len(points)))
	defer prog.Finish()
	// Index-addressed result slots keep the output in sequential sweep
	// order no matter which worker finishes first.
	results := make([]*Candidate, len(points))
	var (
		evalFailed  atomic.Int64
		failMu      sync.Mutex
		lastEvalErr error
	)
	err = pool.Run(ctx, len(points), opt.Workers, func(tctx context.Context, i int) error {
		if err := tctx.Err(); err != nil {
			return err
		}
		defer prog.Inc()
		gp := points[i]
		d := base
		d.CrossbarSize = gp.size
		d.Parallelism = gp.p
		d.Wire = gp.wire
		// The candidate span derives from the pooled task context (which
		// carries the sweep span across the worker boundary) and is keyed by
		// the grid point, so its span ID is identical for every worker count
		// and schedule; the derived tctx flows into the evaluation so solve
		// spans and events chain under this candidate.
		tctx, cs := telemetry.StartSpanKeyed(tctx, "candidate", candID(gp))
		if opt.EvalSpin > 0 {
			seed := uint64(gp.size)<<32 | uint64(gp.p)<<16 | uint64(gp.node)
			spinSink.Add(spin(seed, opt.EvalSpin))
		}
		var r arch.Report
		var err error
		if inject != nil && inject.size == gp.size && inject.p == gp.p && inject.node == gp.node {
			err = fmt.Errorf("%w at %s (FailEval)", errInjected, candID(gp))
		} else {
			r, err = evalCandidate(tctx, &d, layers, opt.Interface)
		}
		evalTime := cs.End()
		if err != nil {
			if tctx.Err() != nil {
				// A cancellation surfacing through the evaluation stack
				// aborts the sweep rather than counting as a failed point.
				return tctx.Err()
			}
			if errors.Is(err, errUnbuildable) {
				telUnbuildable.Inc()
				if telemetry.JournalOn() {
					telemetry.EmitEventCtx(tctx, telemetry.EvCandidateEval, candID(gp),
						map[string]any{"outcome": "unbuildable"})
				}
				return nil // infeasible grid point (e.g. weight overflow)
			}
			telEvalFailed.Inc()
			evalFailed.Add(1)
			failMu.Lock()
			lastEvalErr = fmt.Errorf("dse: size %d p %d node %d: %w", gp.size, gp.p, gp.node, err)
			failMu.Unlock()
			telemetry.Log().Warn("dse candidate evaluation failed",
				"size", gp.size, "parallelism", gp.p, "wire_node", gp.node, "err", err)
			if telemetry.JournalOn() {
				telemetry.EmitEventCtx(tctx, telemetry.EvCandidateEval, candID(gp), map[string]any{
					"outcome": "eval_failed", "err": err.Error(),
					"eval_us": evalTime.Microseconds(),
				})
			}
			return nil
		}
		telCandidates.Inc()
		telEvalUS.Observe(float64(evalTime.Microseconds()))
		c := &Candidate{
			CrossbarSize: gp.size,
			Parallelism:  gp.p,
			WireNode:     gp.node,
			Report:       r,
			Feasible:     math.Abs(r.ErrorWorst) <= opt.ErrorLimit,
			EvalTime:     evalTime,
		}
		if c.Feasible {
			telFeasible.Inc()
		} else {
			telInfeasible.Inc()
		}
		if telemetry.JournalOn() {
			outcome := "ok"
			if !c.Feasible {
				outcome = "infeasible"
			}
			telemetry.EmitEventCtx(tctx, telemetry.EvCandidateEval, candID(gp), map[string]any{
				"outcome": outcome, "eval_us": evalTime.Microseconds(),
				"area_mm2": r.AreaMM2, "energy_j": r.EnergyPerSample,
				"latency_s": r.PipelineCycle, "error_worst": r.ErrorWorst,
			})
		}
		results[i] = c
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("dse: sweep aborted: %w", err)
	}
	out := make([]Candidate, 0, len(results))
	feasible := 0
	for _, c := range results {
		if c == nil {
			continue
		}
		if c.Feasible {
			feasible++
		}
		out = append(out, *c)
	}
	if len(out) == 0 {
		if failed := evalFailed.Load(); failed > 0 {
			return nil, fmt.Errorf("dse: all %d buildable designs failed evaluation, last: %w", failed, lastEvalErr)
		}
		return nil, fmt.Errorf("dse: no buildable design in the space")
	}
	telemetry.Log().Debug("dse sweep done",
		"candidates", len(out), "feasible", feasible, "infeasible", len(out)-feasible,
		"evalfailed", evalFailed.Load(), "workers", pool.Resolve(opt.Workers))
	return out, nil
}

// Best returns the feasible candidate minimising the objective, or nil when
// no candidate is feasible. Each objective's selection pass is timed under
// its own span (dse.select.<objective>).
func Best(cands []Candidate, obj Objective) *Candidate {
	_, sp := telemetry.StartSpan(context.Background(), "dse.select."+strings.ToLower(obj.String()))
	defer sp.End()
	var best *Candidate
	for i := range cands {
		c := &cands[i]
		if !c.Feasible {
			continue
		}
		if best == nil || obj.metric(c) < obj.metric(best) {
			best = c
		}
	}
	return best
}

// zeroOptimumEps is the absolute tolerance window (scaled by the caller's
// fractional tolerance) used by BestWithSecondary when the primary optimum
// is zero or near-zero and a multiplicative window would have zero width.
// 1e-9 is far below any physically meaningful metric value here (areas in
// mm², energies in joules, latencies in seconds, error rates in [0,1]).
const zeroOptimumEps = 1e-9

// BestWithSecondary implements the paper's secondary-target rule
// (Section VII.C.1: "the user can set a secondary optimization target for
// accuracy optimization" — digital-module choices that do not move the
// primary metric can still improve another one). Among feasible candidates
// whose primary metric lies within tolerance (fractional) of the optimum,
// it returns the one minimising the secondary objective.
func BestWithSecondary(cands []Candidate, primary, secondary Objective, tolerance float64) *Candidate {
	first := Best(cands, primary)
	if first == nil {
		return nil
	}
	if tolerance < 0 {
		tolerance = 0
	}
	m0 := primary.metric(first)
	limit := m0 * (1 + tolerance)
	// A multiplicative window collapses to zero width when the optimum is
	// zero (e.g. a 0% error rate under MaxAccuracy) or so small that the
	// product underflows back to m0. Fall back to an additive epsilon scaled
	// by the tolerance so near-optimal candidates still qualify.
	if tolerance > 0 && limit-m0 <= 0 {
		limit = m0 + tolerance*zeroOptimumEps
	}
	var best *Candidate
	for i := range cands {
		c := &cands[i]
		if !c.Feasible || primary.metric(c) > limit {
			continue
		}
		if best == nil || secondary.metric(c) < secondary.metric(best) {
			best = c
		}
	}
	return best
}

// Pareto returns the candidates not dominated on (area, pipeline latency) —
// the trade-off front of Fig. 8. The result is sorted by area.
func Pareto(cands []Candidate) []Candidate {
	var front []Candidate
	for _, c := range cands {
		dominated := false
		for _, d := range cands {
			betterArea := d.Report.AreaMM2 <= c.Report.AreaMM2
			betterLat := d.Report.PipelineCycle <= c.Report.PipelineCycle
			strict := d.Report.AreaMM2 < c.Report.AreaMM2 || d.Report.PipelineCycle < c.Report.PipelineCycle
			if betterArea && betterLat && strict {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, c)
		}
	}
	sort.Slice(front, func(i, j int) bool { return front[i].Report.AreaMM2 < front[j].Report.AreaMM2 })
	return front
}

// RadarFactors computes the five normalized performance factors of Fig. 9
// for each selected design: reciprocal area, energy efficiency (reciprocal
// energy), reciprocal power, speed (reciprocal latency), and accuracy
// (1 − error). The first four are normalized by the maximum across the
// selected designs, matching the paper's normalization.
func RadarFactors(selected []Candidate) [][5]float64 {
	if len(selected) == 0 {
		return nil
	}
	inv := func(v float64) float64 {
		if v <= 0 {
			return 0
		}
		return 1 / v
	}
	raw := make([][5]float64, len(selected))
	var maxes [4]float64
	for i, c := range selected {
		raw[i] = [5]float64{
			inv(c.Report.AreaMM2),
			inv(c.Report.EnergyPerSample),
			inv(c.Report.Power),
			inv(c.Report.PipelineCycle),
			1 - math.Abs(c.Report.ErrorWorst),
		}
		for k := 0; k < 4; k++ {
			if raw[i][k] > maxes[k] {
				maxes[k] = raw[i][k]
			}
		}
	}
	for i := range raw {
		for k := 0; k < 4; k++ {
			if maxes[k] > 0 {
				raw[i][k] /= maxes[k]
			}
		}
	}
	return raw
}
