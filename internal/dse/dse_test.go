package dse

import (
	"context"
	"math"
	"testing"

	"mnsim/internal/arch"
	"mnsim/internal/device"
	"mnsim/internal/periph"
	"mnsim/internal/tech"
)

func baseDesign() arch.Design {
	return arch.Design{
		CrossbarSize:      128,
		WeightPolarity:    2,
		TwoCrossbarSigned: true,
		WeightBits:        4,
		DataBits:          8,
		CMOS:              tech.MustNode(45),
		Wire:              tech.MustInterconnect(45),
		Dev:               device.RRAM(),
		ADC:               periph.ADCVariableSA,
		Neuron:            periph.NeuronSigmoid,
		AreaCoefficient:   arch.DefaultAreaCoefficient,
	}
}

var largeLayer = []arch.LayerDims{{Rows: 2048, Cols: 1024, Passes: 1}}

// smallSpace keeps tests fast while exercising all sweep axes.
func smallSpace() Space {
	return Space{
		CrossbarSizes: []int{32, 64, 128, 256},
		Parallelisms:  []int{1, 16, 256},
		WireNodes:     []int{28, 45},
	}
}

func explore(t *testing.T) []Candidate {
	t.Helper()
	cands, err := Explore(context.Background(), baseDesign(), largeLayer, smallSpace(), Options{ErrorLimit: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	return cands
}

func TestExploreCoversGrid(t *testing.T) {
	cands := explore(t)
	// p=256 only applies to size 256: 4 sizes x 2 p + 1 = 9 per node, 2 nodes.
	if len(cands) != 18 {
		t.Fatalf("got %d candidates, want 18", len(cands))
	}
	seen := map[[3]int]bool{}
	for _, c := range cands {
		key := [3]int{c.CrossbarSize, c.Parallelism, c.WireNode}
		if seen[key] {
			t.Fatalf("duplicate candidate %v", key)
		}
		seen[key] = true
		if c.Report.AreaMM2 <= 0 || c.Report.PipelineCycle <= 0 {
			t.Fatalf("empty report for %v", key)
		}
	}
}

func TestExploreErrors(t *testing.T) {
	if _, err := Explore(context.Background(), baseDesign(), largeLayer, Space{}, Options{}); err == nil {
		t.Error("empty space accepted")
	}
	s := smallSpace()
	s.WireNodes = []int{77}
	if _, err := Explore(context.Background(), baseDesign(), largeLayer, s, Options{}); err == nil {
		t.Error("unknown wire node accepted")
	}
	// A space where nothing can be built: crossbars too small for the
	// signed 16-bit weights.
	d := baseDesign()
	d.WeightBits = 16
	d.TwoCrossbarSigned = false
	bad := Space{CrossbarSizes: []int{4}, Parallelisms: []int{1}, WireNodes: []int{45}}
	if _, err := Explore(context.Background(), d, largeLayer, bad, Options{}); err == nil {
		t.Error("unbuildable space accepted")
	}
}

func TestBestPerObjective(t *testing.T) {
	cands := explore(t)
	for _, obj := range Objectives() {
		best := Best(cands, obj)
		if best == nil {
			t.Fatalf("%v: no feasible design", obj)
		}
		if !best.Feasible {
			t.Fatalf("%v: Best returned infeasible design", obj)
		}
		for i := range cands {
			c := &cands[i]
			if c.Feasible && obj.metric(c) < obj.metric(best) {
				t.Fatalf("%v: candidate %+v beats Best %+v", obj, c, best)
			}
		}
	}
}

// The qualitative Table IV story: the area-optimal design uses a large
// crossbar with minimum parallelism; the latency-optimal design uses full
// parallelism; the accuracy-optimal design uses a mid-size crossbar with
// the older (thicker-wire) interconnect.
func TestOptimaMatchPaperShapes(t *testing.T) {
	cands := explore(t)
	area := Best(cands, MinArea)
	lat := Best(cands, MinLatency)
	acc := Best(cands, MaxAccuracy)
	if area.Parallelism != 1 {
		t.Errorf("area-optimal parallelism = %d, want 1", area.Parallelism)
	}
	if area.CrossbarSize < lat.CrossbarSize && area.CrossbarSize < 128 {
		t.Errorf("area-optimal crossbar %d unexpectedly small", area.CrossbarSize)
	}
	if lat.Parallelism < 128 {
		t.Errorf("latency-optimal parallelism = %d, want large", lat.Parallelism)
	}
	if acc.CrossbarSize < 32 || acc.CrossbarSize > 128 {
		t.Errorf("accuracy-optimal crossbar = %d, want mid size", acc.CrossbarSize)
	}
	if acc.WireNode != 45 {
		t.Errorf("accuracy-optimal wire node = %d, want the older 45nm", acc.WireNode)
	}
}

func TestBestRespectsFeasibility(t *testing.T) {
	cands := explore(t)
	// With an absurdly tight constraint nothing is feasible.
	for i := range cands {
		cands[i].Feasible = math.Abs(cands[i].Report.ErrorWorst) < 1e-9
	}
	if Best(cands, MinArea) != nil {
		t.Fatal("Best should return nil with no feasible candidates")
	}
}

func TestParetoFront(t *testing.T) {
	cands := explore(t)
	front := Pareto(cands)
	if len(front) == 0 || len(front) > len(cands) {
		t.Fatalf("front size %d of %d", len(front), len(cands))
	}
	// Sorted by area, and latency must be non-increasing along the front.
	for i := 1; i < len(front); i++ {
		if front[i].Report.AreaMM2 < front[i-1].Report.AreaMM2 {
			t.Fatal("front not sorted by area")
		}
		if front[i].Report.PipelineCycle > front[i-1].Report.PipelineCycle {
			t.Fatal("front not monotone in latency")
		}
	}
	// No front member is dominated by any candidate.
	for _, f := range front {
		for _, c := range cands {
			if c.Report.AreaMM2 < f.Report.AreaMM2 && c.Report.PipelineCycle < f.Report.PipelineCycle {
				t.Fatalf("front member %+v dominated", f)
			}
		}
	}
}

func TestRadarFactors(t *testing.T) {
	cands := explore(t)
	selected := []Candidate{*Best(cands, MinArea), *Best(cands, MinEnergy), *Best(cands, MinLatency), *Best(cands, MaxAccuracy)}
	radar := RadarFactors(selected)
	if len(radar) != 4 {
		t.Fatalf("radar rows = %d", len(radar))
	}
	for k := 0; k < 4; k++ {
		maxV := 0.0
		for _, row := range radar {
			if row[k] < 0 || row[k] > 1+1e-12 {
				t.Fatalf("factor %d outside [0,1]: %v", k, row[k])
			}
			if row[k] > maxV {
				maxV = row[k]
			}
		}
		if math.Abs(maxV-1) > 1e-12 {
			t.Fatalf("factor %d not normalized to 1 (max %v)", k, maxV)
		}
	}
	// Each optimal design tops its own factor: reciprocal area for the
	// area-optimal design, speed for the latency-optimal one.
	if radar[0][0] != 1 {
		t.Error("area-optimal design should have normalized reciprocal area 1")
	}
	if radar[2][3] != 1 {
		t.Error("latency-optimal design should have normalized speed 1")
	}
	if RadarFactors(nil) != nil {
		t.Error("empty selection should return nil")
	}
}

func TestObjectiveString(t *testing.T) {
	for obj, want := range map[Objective]string{MinArea: "Area", MinEnergy: "Energy", MinLatency: "Latency", MaxAccuracy: "Accuracy"} {
		if obj.String() != want {
			t.Errorf("%d -> %q", int(obj), obj.String())
		}
	}
	if Objective(9).String() != "Objective(9)" {
		t.Error("unknown objective String")
	}
	if !math.IsNaN(Objective(9).metric(&Candidate{})) {
		t.Error("unknown objective metric should be NaN")
	}
}

func TestDefaultSpaceMatchesPaperRanges(t *testing.T) {
	s := DefaultSpace()
	if s.CrossbarSizes[0] != 4 || s.CrossbarSizes[len(s.CrossbarSizes)-1] != 1024 {
		t.Errorf("sizes %v", s.CrossbarSizes)
	}
	if s.WireNodes[0] != 18 || s.WireNodes[len(s.WireNodes)-1] != 45 {
		t.Errorf("wire nodes %v", s.WireNodes)
	}
}
