package dse

import (
	"context"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"testing"
	"time"

	"mnsim/internal/arch"
	"mnsim/internal/telemetry"
)

// TestExploreLiveProgress is the acceptance test for the live
// observability server: while a sweep is running, /progress must report
// the dse.candidates phase with nonzero done, done < total, and a
// non-negative ETA. The real evaluator finishes a small sweep in
// milliseconds — too fast to scrape reliably — so it is swapped for a
// slow stub via the evalCandidate package variable.
func TestExploreLiveProgress(t *testing.T) {
	saved := evalCandidate
	evalCandidate = func(ctx context.Context, d *arch.Design, layers []arch.LayerDims, iface [2]int) (arch.Report, error) {
		select {
		case <-time.After(5 * time.Millisecond):
		case <-ctx.Done():
			return arch.Report{}, ctx.Err()
		}
		return saved(ctx, d, layers, iface)
	}
	defer func() { evalCandidate = saved }()

	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := telemetry.AddFlags(fs)
	if err := fs.Parse([]string{"-serve", "localhost:0"}); err != nil {
		t.Fatal(err)
	}
	if err := f.StartContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer f.Finish()
	url := "http://" + f.Addr() + "/progress"

	space := Space{
		CrossbarSizes: []int{32, 64, 128},
		Parallelisms:  []int{1, 4, 16},
		WireNodes:     []int{45},
	} // 9 grid points x ~5ms each, on 2 workers: ~20ms of sweep to observe
	done := make(chan error, 1)
	go func() {
		_, err := Explore(context.Background(), baseDesign(), largeLayer, space, Options{ErrorLimit: 0.25, Workers: 2})
		done <- err
	}()

	type phase struct {
		Name       string  `json:"name"`
		Total      int64   `json:"total"`
		Done       int64   `json:"done"`
		Running    bool    `json:"running"`
		ETASeconds float64 `json:"eta_seconds"`
	}
	sawMidSweep := false
	deadline := time.Now().Add(10 * time.Second)
poll:
	for !sawMidSweep && time.Now().Before(deadline) {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			break poll
		default:
		}
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		var doc struct {
			Phases []phase `json:"phases"`
		}
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatalf("/progress malformed: %v\n%s", err, body)
		}
		for _, p := range doc.Phases {
			if p.Name != "dse.candidates" || !p.Running {
				continue
			}
			if p.Total != 9 {
				t.Fatalf("phase total = %d, want 9", p.Total)
			}
			if p.Done > 0 && p.Done < p.Total && p.ETASeconds >= 0 {
				sawMidSweep = true
			}
		}
		time.Sleep(time.Millisecond)
	}
	if !sawMidSweep {
		t.Fatal("never observed a mid-sweep /progress snapshot with 0 < done < total and an ETA")
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
