package funcsim

import (
	"math"
	"math/rand"
	"testing"

	"mnsim/internal/arch"
	"mnsim/internal/device"
	"mnsim/internal/nn"
	"mnsim/internal/periph"
	"mnsim/internal/tech"
)

func refDesign(size int) *arch.Design {
	return &arch.Design{
		CrossbarSize:      size,
		WeightPolarity:    2,
		TwoCrossbarSigned: true,
		WeightBits:        4,
		DataBits:          8,
		CMOS:              tech.MustNode(45),
		Wire:              tech.MustInterconnect(45),
		Dev:               device.RRAM(),
		ADC:               periph.ADCVariableSA,
		Neuron:            periph.NeuronSigmoid,
		AreaCoefficient:   arch.DefaultAreaCoefficient,
	}
}

func machine(t *testing.T, size int, widths ...int) *Machine {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	net, err := nn.RandomFCNet("test", rng, widths...)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(refDesign(size), net)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMachine(t *testing.T) {
	m := machine(t, 64, 100, 40, 10)
	if len(m.Images) != 2 {
		t.Fatalf("images = %d", len(m.Images))
	}
	if len(m.Accel.Banks) != 2 {
		t.Fatalf("banks = %d", len(m.Accel.Banks))
	}
	// The machine's performance model evaluates alongside.
	if _, err := m.Accel.Evaluate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewMachineErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net, err := nn.RandomFCNet("x", rng, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	bad := refDesign(64)
	bad.WeightBits = 0
	if _, err := NewMachine(bad, net); err == nil {
		t.Error("invalid design accepted")
	}
	if _, err := NewMachine(refDesign(64), &nn.FCNet{Name: "empty"}); err == nil {
		t.Error("empty network accepted")
	}
}

// The mapped machine's error-free output must track the quantized software
// forward pass: the analog MVM computes the same weighted sums (up to the
// weight/data quantization and analog normalisation).
func TestRunTracksSoftwareForward(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := machine(t, 64, 48, 16)
	input := make([]float64, 48)
	for i := range input {
		input[i] = rng.Float64()
	}
	hw, err := m.Run(input, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(hw) != 16 {
		t.Fatalf("outputs = %d", len(hw))
	}
	// Software reference: the same weights, no quantization. The two are
	// different scales, so compare correlation (order agreement), not
	// absolute values.
	sw, err := m.Net.Forward(input, nn.ForwardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pearson(hw, sw) < 0.95 {
		t.Fatalf("hardware/software correlation %.3f too low\nhw=%v\nsw=%v", pearson(hw, sw), hw, sw)
	}
}

func pearson(a, b []float64) float64 {
	n := float64(len(a))
	var sa, sb, saa, sbb, sab float64
	for i := range a {
		sa += a[i]
		sb += b[i]
		saa += a[i] * a[i]
		sbb += b[i] * b[i]
		sab += a[i] * b[i]
	}
	num := sab - sa*sb/n
	den := math.Sqrt((saa - sa*sa/n) * (sbb - sb*sb/n))
	if den == 0 {
		return 0
	}
	return num / den
}

// A network tiled over multiple blocks must agree with the same network on
// a single big crossbar (the adder-tree merge is exact).
func TestTilingInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net, err := nn.RandomFCNet("tile", rng, 96, 24)
	if err != nil {
		t.Fatal(err)
	}
	small, err := NewMachine(refDesign(32), net) // 3 row blocks
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewMachine(refDesign(128), net) // 1 block
	if err != nil {
		t.Fatal(err)
	}
	input := make([]float64, 96)
	for i := range input {
		input[i] = rng.Float64()
	}
	a, err := small.Run(input, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := big.Run(input, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pearson(a, b) < 0.98 {
		t.Fatalf("tiled/monolithic correlation %.3f too low", pearson(a, b))
	}
}

func TestRunErrors(t *testing.T) {
	m := machine(t, 64, 8, 4)
	if _, err := m.Run([]float64{1}, RunOptions{}); err == nil {
		t.Error("short input accepted")
	}
	if _, err := m.Run(make([]float64, 8), RunOptions{InjectError: true}); err == nil {
		t.Error("injection without RNG accepted")
	}
}

// Error injection degrades but does not destroy the output.
func TestAccuracyWithInjection(t *testing.T) {
	m := machine(t, 64, 64, 16, 64)
	rng := rand.New(rand.NewSource(4))
	inputs := make([][]float64, 5)
	for i := range inputs {
		inputs[i] = make([]float64, 64)
		for j := range inputs[i] {
			inputs[i][j] = rng.Float64()
		}
	}
	acc, err := m.Accuracy(inputs, rng)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 || acc > 1 {
		t.Fatalf("relative accuracy %v outside [0.9, 1]", acc)
	}
	if _, err := m.Accuracy(nil, rng); err == nil {
		t.Error("empty batch accepted")
	}
}

// Determinism without injection.
func TestRunDeterministic(t *testing.T) {
	m := machine(t, 64, 16, 8)
	input := make([]float64, 16)
	for i := range input {
		input[i] = float64(i) / 16
	}
	a, err := m.Run(input, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Run(input, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d", i)
		}
	}
}

// The same-crossbar signed mapping must agree with the two-crossbar one.
func TestSignedMappingsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net, err := nn.RandomFCNet("signed", rng, 24, 12)
	if err != nil {
		t.Fatal(err)
	}
	dTwo := refDesign(64)
	dSame := refDesign(64)
	dSame.TwoCrossbarSigned = false
	mTwo, err := NewMachine(dTwo, net)
	if err != nil {
		t.Fatal(err)
	}
	mSame, err := NewMachine(dSame, net)
	if err != nil {
		t.Fatal(err)
	}
	input := make([]float64, 24)
	for i := range input {
		input[i] = rng.Float64()
	}
	a, err := mTwo.Run(input, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := mSame.Run(input, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pearson(a, b) < 0.97 {
		t.Fatalf("mapping correlation %.3f too low", pearson(a, b))
	}
}
