// Package funcsim is the functional simulator of a mapped accelerator: it
// executes a fully-connected network exactly the way the hardware does —
// weights decomposed onto crossbars by the mapper, each block computing the
// analog matrix-vector product of Eq. 1–2, the adder tree merging row
// blocks and signed pairs (Eq. 5), the read circuits quantizing to the ADC
// level count, and the neuron modules applying the non-linearity — with the
// behaviour-level accuracy model's deviation optionally injected per block.
//
// It closes the loop between the performance models (package arch) and the
// application: the same Design that produced an area/latency report also
// produces the network's actual outputs and its end-to-end accuracy.
package funcsim

import (
	"fmt"
	"math"
	"math/rand"

	"mnsim/internal/accuracy"
	"mnsim/internal/arch"
	"mnsim/internal/crossbar"
	"mnsim/internal/mapper"
	"mnsim/internal/nn"
)

// Machine is a network mapped onto an accelerator design, ready to execute
// samples.
type Machine struct {
	Design *arch.Design
	Net    *nn.FCNet
	// Images holds one programming image per layer.
	Images []*mapper.Image
	// Accel is the matching performance model (for latency/energy of the
	// executed samples).
	Accel *arch.Accelerator
}

// NewMachine maps every layer of the network onto the design.
func NewMachine(d *arch.Design, net *nn.FCNet) (*Machine, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if len(net.Weights) == 0 {
		return nil, fmt.Errorf("funcsim: network %q has no layers", net.Name)
	}
	m := &Machine{Design: d, Net: net}
	var layers []arch.LayerDims
	for l, w := range net.Weights {
		img, err := mapper.Map(d, w)
		if err != nil {
			return nil, fmt.Errorf("funcsim: layer %d: %w", l, err)
		}
		m.Images = append(m.Images, img)
		layers = append(layers, arch.LayerDims{Rows: len(w), Cols: len(w[0]), Passes: 1})
	}
	a, err := arch.NewAccelerator(d, layers, [2]int{128, 128})
	if err != nil {
		return nil, err
	}
	m.Accel = a
	return m, nil
}

// RunOptions controls one inference.
type RunOptions struct {
	// InjectError enables the behaviour-level deviation: each block's
	// analog output is perturbed by a uniform relative error within the
	// model's per-crossbar ε (average case), sampled per block.
	InjectError bool
	// Rng drives the error injection; required when InjectError is set.
	Rng *rand.Rand
	// Act is the inter-layer neuron function (Sigmoid if nil).
	Act nn.Activation
}

// Run executes one input sample (values in [0,1]) through the mapped
// machine and returns the output vector (values in [-1,1] scale of the
// layer outputs).
func (m *Machine) Run(input []float64, opt RunOptions) ([]float64, error) {
	if opt.InjectError && opt.Rng == nil {
		return nil, fmt.Errorf("funcsim: error injection needs an RNG")
	}
	act := opt.Act
	if act == nil {
		act = nn.Sigmoid
	}
	cur := append([]float64(nil), input...)
	for l, img := range m.Images {
		if len(cur) != img.Rows {
			return nil, fmt.Errorf("funcsim: layer %d expects %d inputs, got %d", l, img.Rows, len(cur))
		}
		out, err := m.runLayer(img, cur, opt)
		if err != nil {
			return nil, fmt.Errorf("funcsim: layer %d: %w", l, err)
		}
		if l < len(m.Images)-1 {
			for j := range out {
				out[j] = act(out[j])
			}
		}
		cur = out
	}
	return cur, nil
}

// runLayer executes one mapped layer: every block computes its analog MVM,
// the signed pair subtracts, the adder tree sums the row blocks, and the
// result quantizes to the ADC level count.
func (m *Machine) runLayer(img *mapper.Image, input []float64, opt RunOptions) ([]float64, error) {
	return runImage(m.Design, img, input, opt)
}

// runImage is the block-level execution shared by the FC and conv paths.
func runImage(d *arch.Design, img *mapper.Image, input []float64, opt RunOptions) ([]float64, error) {
	s := d.CrossbarSize
	logicalCols := s / d.CellsPerWeight()
	out := make([]float64, img.Cols)
	xp := d.Crossbar(s, s)
	var eps float64
	if opt.InjectError {
		e, err := accuracy.Eval(xp)
		if err != nil {
			return nil, err
		}
		eps = math.Abs(e.Avg)
	}
	fullScale := xp.OutputFullScale()
	adcLevels := float64(int(1)<<uint(d.ADCBits())) - 1
	for bi := range img.Blocks {
		blk := &img.Blocks[bi]
		r0 := blk.RowBlock * s
		c0 := blk.ColBlock * logicalCols
		vin := make([]float64, blk.Rows)
		for r := range vin {
			x := input[r0+r]
			vin[r] = math.Max(0, math.Min(1, x)) * xp.VDrive
		}
		// One analog MVM per physical crossbar of the unit.
		perXbar := make([][]float64, len(blk.Cells))
		for x, cells := range blk.Cells {
			g := make([][]float64, blk.Rows)
			for r := range g {
				g[r] = make([]float64, len(cells[r]))
				for c, asg := range cells[r] {
					g[r][c] = 1 / asg.Resistance
				}
			}
			p := crossbar.Params{
				Rows: blk.Rows, Cols: len(cells[0]),
				Dev: d.Dev, Wire: d.Wire, RSense: xp.RSense, VDrive: xp.VDrive,
			}
			v, err := p.IdealMVM(g, vin)
			if err != nil {
				return nil, err
			}
			if opt.InjectError {
				dev := 1 + eps*(2*opt.Rng.Float64()-1)
				for j := range v {
					v[j] *= dev
				}
			}
			perXbar[x] = v
		}
		// Read circuits: signed merge, normalise, quantize, accumulate into
		// the layer outputs (the adder tree of Eq. 5).
		slices := d.BitSlices()
		for c := 0; c < blk.LogicalCols; c++ {
			pos, neg := 0.0, 0.0
			switch {
			case d.WeightPolarity == 1:
				pos = sliceValue(perXbar[0], c*slices, slices, d.Dev.LevelBits)
			case d.TwoCrossbarSigned:
				pos = sliceValue(perXbar[0], c*slices, slices, d.Dev.LevelBits)
				neg = sliceValue(perXbar[1], c*slices, slices, d.Dev.LevelBits)
			default:
				pos = sliceValue(perXbar[0], c*2*slices, slices, d.Dev.LevelBits)
				neg = sliceValue(perXbar[0], c*2*slices+slices, slices, d.Dev.LevelBits)
			}
			y := (pos - neg) / fullScale
			// ADC quantization of each merged block result.
			y = math.Round(y*adcLevels) / adcLevels
			out[c0+c] += y
		}
	}
	// Normalise the row-block accumulation like the hardware's fixed-point
	// rescale after the adder tree.
	rowBlocks := (img.Rows + s - 1) / s
	for j := range out {
		out[j] /= float64(rowBlocks)
	}
	return out, nil
}

// sliceValue merges the bit-sliced column voltages of one logical weight:
// slice 0 is the most significant, each following slice is worth 2^-cellBits
// of the previous (the shifter-and-adder-tree merge of Section III.B.2).
func sliceValue(v []float64, col, slices, cellBits int) float64 {
	total, weight := 0.0, 1.0
	for sl := 0; sl < slices; sl++ {
		total += v[col+sl] * weight
		weight /= float64(int(1) << uint(cellBits))
	}
	return total
}

// Accuracy runs a batch of samples with and without error injection and
// returns the mean relative accuracy — the end-to-end counterpart of the
// behaviour-level model's layer-wise estimate.
func (m *Machine) Accuracy(inputs [][]float64, rng *rand.Rand) (float64, error) {
	if len(inputs) == 0 {
		return 0, fmt.Errorf("funcsim: no input samples")
	}
	sum := 0.0
	for i, in := range inputs {
		ideal, err := m.Run(in, RunOptions{})
		if err != nil {
			return 0, fmt.Errorf("funcsim: sample %d: %w", i, err)
		}
		got, err := m.Run(in, RunOptions{InjectError: true, Rng: rng})
		if err != nil {
			return 0, fmt.Errorf("funcsim: sample %d: %w", i, err)
		}
		acc, err := nn.RelativeAccuracy(ideal, got)
		if err != nil {
			return 0, err
		}
		sum += acc
	}
	return sum / float64(len(inputs)), nil
}
