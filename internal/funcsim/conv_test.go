package funcsim

import (
	"math"
	"math/rand"
	"testing"

	"mnsim/internal/nn"
)

func randomKernels(kw, kh, inC, outC int, rng *rand.Rand) *nn.ConvKernels {
	ws := make([][]float64, outC)
	for k := range ws {
		ws[k] = make([]float64, kw*kh*inC)
		for i := range ws[k] {
			ws[k][i] = rng.Float64()*2 - 1
		}
	}
	kern, err := nn.NewConvKernels(kw, kh, inC, ws)
	if err != nil {
		panic(err)
	}
	return kern
}

func randomImage(w, h, c int, rng *rand.Rand) *nn.Tensor3 {
	t := nn.NewTensor3(w, h, c)
	for i := range t.Data {
		t.Data[i] = rng.Float64()
	}
	return t
}

// The crossbar-executed convolution must track the exact convolution: same
// output ordering (high correlation) within the quantization budget.
func TestRunConvTracksExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := machine(t, 64, 8, 4) // machine only supplies the design for conv
	in := randomImage(6, 6, 2, rng)
	k := randomKernels(3, 3, 2, 4, rng)
	hw, err := m.RunConv(in, k, ConvOptions{Stride: 1, Pad: 1})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := nn.Conv2D(in, k, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if hw.W != exact.W || hw.H != exact.H || hw.C != exact.C {
		t.Fatalf("shape %dx%dx%d vs %dx%dx%d", hw.W, hw.H, hw.C, exact.W, exact.H, exact.C)
	}
	if r := pearson(hw.Data, exact.Data); r < 0.95 {
		t.Fatalf("correlation %.3f too low", r)
	}
}

func TestRunConvDefaultStride(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := machine(t, 64, 8, 4)
	in := randomImage(5, 5, 1, rng)
	k := randomKernels(3, 3, 1, 2, rng)
	out, err := m.RunConv(in, k, ConvOptions{}) // stride defaults to 1
	if err != nil {
		t.Fatal(err)
	}
	if out.W != 3 || out.H != 3 {
		t.Fatalf("shape %dx%d, want 3x3", out.W, out.H)
	}
}

func TestRunConvWithInjection(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := machine(t, 64, 8, 4)
	in := randomImage(5, 5, 1, rng)
	k := randomKernels(3, 3, 1, 2, rng)
	clean, err := m.RunConv(in, k, ConvOptions{Stride: 1})
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := m.RunConv(in, k, ConvOptions{Stride: 1, InjectError: true, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	diff := 0.0
	for i := range clean.Data {
		diff += math.Abs(clean.Data[i] - noisy.Data[i])
	}
	if diff == 0 {
		t.Fatal("injection had no effect")
	}
	if _, err := m.RunConv(in, k, ConvOptions{InjectError: true}); err == nil {
		t.Error("injection without RNG accepted")
	}
}

func TestRunConvErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := machine(t, 64, 8, 4)
	in := randomImage(4, 4, 2, rng)
	wrong := randomKernels(3, 3, 3, 2, rng) // channel mismatch
	if _, err := m.RunConv(in, wrong, ConvOptions{Stride: 1}); err == nil {
		t.Error("channel mismatch accepted")
	}
}
