package funcsim

import (
	"fmt"
	"math/rand"

	"mnsim/internal/mapper"
	"mnsim/internal/nn"
)

// ConvOptions controls RunConv.
type ConvOptions struct {
	Stride, Pad int
	// InjectError / Rng mirror RunOptions.
	InjectError bool
	Rng         *rand.Rand
}

// RunConv executes one convolutional layer through the mapped crossbars:
// the kernel stack becomes the (kw·kh·Cin)×Cout matrix of a computation
// bank (Section II.B.3), the mapper programs it onto crossbar blocks, and
// every output position's Im2Col patch drives one analog pass — the
// stream the Fig. 1(f) line buffers feed in hardware. Inputs must lie in
// [0,1]; outputs are in the layer's normalised signed scale.
func (m *Machine) RunConv(in *nn.Tensor3, kernels *nn.ConvKernels, opt ConvOptions) (*nn.Tensor3, error) {
	if opt.InjectError && opt.Rng == nil {
		return nil, fmt.Errorf("funcsim: error injection needs an RNG")
	}
	img, err := mapper.Map(m.Design, kernels.Matrix())
	if err != nil {
		return nil, err
	}
	stride, pad := opt.Stride, opt.Pad
	if stride == 0 {
		stride = 1
	}
	runOpt := RunOptions{InjectError: opt.InjectError, Rng: opt.Rng}
	return nn.ConvByMVM(in, kernels, stride, pad, func(_ [][]float64, patch []float64) ([]float64, error) {
		return runImage(m.Design, img, patch, runOpt)
	})
}
