package accuracy

import (
	"math"
	"testing"

	"mnsim/internal/circuit"
	"mnsim/internal/crossbar"
	"mnsim/internal/device"
	"mnsim/internal/tech"
)

// circuitWorstError measures the ground-truth worst-case error of the
// farthest column with the circuit-level solver: all cells at minimum
// resistance, full-scale inputs (the Fig. 5 experiment).
func circuitWorstError(t *testing.T, size, node int) float64 {
	t.Helper()
	dev := device.RRAM()
	p := crossbar.New(size, size, dev, tech.MustInterconnect(node))
	r := make([][]float64, size)
	for i := range r {
		r[i] = make([]float64, size)
		for j := range r[i] {
			r[i][j] = dev.RMin
		}
	}
	c := &circuit.Crossbar{M: size, N: size, R: r, WireR: p.Wire.SegmentR, RSense: p.RSense, Dev: dev}
	vin := make([]float64, size)
	for i := range vin {
		vin[i] = p.VDrive
	}
	res, err := c.Solve(vin, circuit.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := c.IdealOut(vin)
	if err != nil {
		t.Fatal(err)
	}
	last := size - 1
	return (ideal[last] - res.VOut[last]) / ideal[last]
}

// The behaviour-level model must track the circuit-level solver across
// crossbar sizes and interconnect nodes with an RMSE below 0.01 — the
// fidelity the paper claims for its Eq. 11 fit (Fig. 5: "The root mean
// squared error of this fitting curve is less than 0.01").
func TestModelFitsCircuitRMSE(t *testing.T) {
	if testing.Short() {
		t.Skip("circuit-level solves are slow")
	}
	var sumSq float64
	var count int
	for _, node := range []int{90, 45, 28, 18} {
		for _, size := range []int{8, 16, 32, 64} {
			want := circuitWorstError(t, size, node)
			got, err := WorstCaseColumn(crossbar.New(size, size, device.RRAM(), tech.MustInterconnect(node)))
			if err != nil {
				t.Fatal(err)
			}
			diff := got - want
			sumSq += diff * diff
			count++
			if math.Abs(diff) > 0.02 {
				t.Errorf("size %d node %d: model %+.4f vs circuit %+.4f", size, node, got, want)
			}
		}
	}
	rmse := math.Sqrt(sumSq / float64(count))
	if rmse >= 0.01 {
		t.Fatalf("model-vs-circuit RMSE = %.4f, want < 0.01", rmse)
	}
	t.Logf("model-vs-circuit RMSE = %.4f over %d points", rmse, count)
}
