package accuracy

import (
	"path/filepath"
	"testing"

	"mnsim/internal/telemetry"
)

// A journaled Monte-Carlo run emits one mc_trial event per trial under a
// single run id, and the parallel seeded mode stays bit-identical to the
// unjournaled run (the recorder only observes).
func TestMonteCarloJournalsTrials(t *testing.T) {
	p := refParams(8, 45)
	opt := MCOptions{Trials: 32, Sigma: 0.1, Seed: 7, Workers: 4}
	base, err := MonteCarlo(p, opt)
	if err != nil {
		t.Fatal(err)
	}

	j := telemetry.DefaultJournal()
	jp := filepath.Join(t.TempDir(), "mc.jsonl")
	if err := j.Open(jp); err != nil {
		t.Fatal(err)
	}
	defer j.Reset()
	res, err := MonteCarlo(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if res != base {
		t.Fatalf("journal changed the result: %+v vs %+v", res, base)
	}

	events, err := telemetry.ReadJournalFile(jp)
	if err != nil {
		t.Fatal(err)
	}
	trials := 0
	ids := map[string]bool{}
	for _, e := range events {
		if e.Type != telemetry.EvMCTrial {
			continue
		}
		trials++
		ids[e.ID] = true
		if _, hasErr := e.Data["abs_err"]; !hasErr {
			if deg, _ := e.Data["degenerate"].(bool); !deg {
				t.Fatalf("mc_trial without abs_err not flagged degenerate: %+v", e)
			}
		}
	}
	if trials != opt.Trials {
		t.Fatalf("journal has %d mc_trial events, want %d", trials, opt.Trials)
	}
	if len(ids) != 1 {
		t.Fatalf("trials span %d run ids, want 1: %v", len(ids), ids)
	}
}
