package accuracy

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mnsim/internal/crossbar"
	"mnsim/internal/telemetry"
)

// Monte-Carlo telemetry: cumulative trial count and the sampling rate of
// the most recent run.
var (
	telMCTrials     = telemetry.GetCounter("mnsim_accuracy_mc_trials_total")
	telMCSamplesSec = telemetry.GetGauge("mnsim_accuracy_mc_samples_per_second")
)

// DefaultSeed seeds the generator MonteCarlo builds when MCOptions.Rng is
// nil; see the seeding contract on that field.
const DefaultSeed = 1

// MCOptions tunes a Monte-Carlo accuracy run.
type MCOptions struct {
	// Trials is the number of random (weights, inputs, variation) samples.
	Trials int
	// Sigma is the per-cell resistance variation; each trial draws every
	// cell's deviation uniformly from [-sigma, +sigma] (Eq. 16's random
	// factor, sampled instead of worst-cased).
	Sigma float64
	// Rng supplies randomness. Nil selects a fresh deterministic generator
	// seeded with DefaultSeed, so repeated runs with identical options
	// produce bit-identical results — pass an explicitly seeded generator
	// to decorrelate runs or to share one stream across calls.
	Rng *rand.Rand
}

// MCResult summarises the sampled distribution of the column output error
// rate.
type MCResult struct {
	Mean, Std float64
	// P50, P95, P99 are percentiles of the |error| distribution.
	P50, P95, P99 float64
	// Max is the largest sampled |error|.
	Max    float64
	Trials int
}

// MonteCarlo samples the crossbar output error statistically: each trial
// draws a random level population and random inputs, computes the exact
// loaded analog output with deviated cell resistances (variation plus the
// non-linear operating-point shift plus the lumped wire term), and compares
// it against the ideal fixed-point result. Where Eval gives closed-form
// average/worst cases, MonteCarlo gives the distribution between them —
// the statistical extension follow-on platforms (MNSIM 2.0) added.
func MonteCarlo(p crossbar.Params, opt MCOptions) (MCResult, error) {
	if err := p.Validate(); err != nil {
		return MCResult{}, err
	}
	if opt.Trials < 1 {
		return MCResult{}, fmt.Errorf("accuracy: Monte-Carlo needs at least 1 trial")
	}
	if opt.Sigma < 0 || opt.Sigma > 0.5 {
		return MCResult{}, fmt.Errorf("accuracy: sigma %g outside [0,0.5]", opt.Sigma)
	}
	if opt.Rng == nil {
		opt.Rng = rand.New(rand.NewSource(DefaultSeed))
	}
	_, sp := telemetry.StartSpan(context.Background(), "accuracy.montecarlo")
	defer func() {
		if d := sp.End(); d > 0 {
			telMCSamplesSec.Set(float64(opt.Trials) / d.Seconds())
		}
		telMCTrials.Add(int64(opt.Trials))
	}()
	errs := make([]float64, 0, opt.Trials)
	gs := 1 / p.RSense
	wire := WireTerm(p.Rows, p.Cols, p.Wire.SegmentR)
	rIdeal := make([]float64, p.Rows)
	vin := make([]float64, p.Rows)
	for trial := 0; trial < opt.Trials; trial++ {
		for i := range vin {
			vin[i] = p.VDrive * opt.Rng.Float64()
		}
		// One representative column: random levels per cell.
		numIdl, denIdl := 0.0, gs
		numAct, denAct := 0.0, gs
		for m := 0; m < p.Rows; m++ {
			lvl := opt.Rng.Intn(p.Dev.Levels())
			r, err := p.Dev.LevelResistance(lvl)
			if err != nil {
				return MCResult{}, err
			}
			rIdeal[m] = r
			g := 1 / r
			numIdl += g * vin[m]
			denIdl += g
		}
		vIdl := numIdl / denIdl
		// Actual: operating-point shift, variation, and the average lumped
		// wire term shared across the column's cells.
		for m := 0; m < p.Rows; m++ {
			vCell := vin[m] - vIdl
			if vCell < 0 {
				vCell = 0
			}
			rAct := p.Dev.EffectiveR(vCell, rIdeal[m])
			rAct *= 1 + opt.Sigma*(2*opt.Rng.Float64()-1)
			rAct += wire / 2 // average cell position sees half the worst-corner wire term
			g := 1 / rAct
			numAct += g * vin[m]
			denAct += g
		}
		vAct := numAct / denAct
		if vIdl != 0 {
			errs = append(errs, math.Abs((vIdl-vAct)/vIdl))
		}
	}
	if len(errs) == 0 {
		return MCResult{}, fmt.Errorf("accuracy: all trials degenerate")
	}
	sort.Float64s(errs)
	res := MCResult{Trials: len(errs)}
	sum, sumSq := 0.0, 0.0
	for _, e := range errs {
		sum += e
		sumSq += e * e
	}
	res.Mean = sum / float64(len(errs))
	res.Std = math.Sqrt(math.Max(0, sumSq/float64(len(errs))-res.Mean*res.Mean))
	pct := func(q float64) float64 {
		idx := int(q * float64(len(errs)-1))
		return errs[idx]
	}
	res.P50, res.P95, res.P99 = pct(0.50), pct(0.95), pct(0.99)
	res.Max = errs[len(errs)-1]
	return res, nil
}
