package accuracy

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync/atomic"

	"mnsim/internal/crossbar"
	"mnsim/internal/pool"
	"mnsim/internal/telemetry"
)

// Monte-Carlo telemetry: cumulative trial count and the sampling rate of
// the most recent run.
var (
	telMCTrials     = telemetry.GetCounter("mnsim_accuracy_mc_trials_total")
	telMCSamplesSec = telemetry.GetGauge("mnsim_accuracy_mc_samples_per_second")
)

// DefaultSeed seeds the per-trial streams MonteCarlo derives when
// MCOptions.Rng is nil; see the seeding contract on MCOptions.
const DefaultSeed = 1

// MCOptions tunes a Monte-Carlo accuracy run.
type MCOptions struct {
	// Trials is the number of random (weights, inputs, variation) samples.
	Trials int
	// Sigma is the per-cell resistance variation; each trial draws every
	// cell's deviation uniformly from [-sigma, +sigma] (Eq. 16's random
	// factor, sampled instead of worst-cased).
	Sigma float64
	// Rng supplies randomness in the legacy shared-stream mode: every trial
	// draws from this one generator in sequence, which forces the run onto
	// a single worker. Leave it nil to use the seeded per-trial streams
	// (see Seed), which shard across workers deterministically.
	Rng *rand.Rand
	// Seed is the base of the per-trial stream family used when Rng is nil:
	// trial t draws from a generator seeded with a splitmix64 mix of
	// (Seed, t), so the sampled distribution is a pure function of
	// (options, trial index) and parallel runs are bit-identical to
	// sequential ones. Zero selects DefaultSeed.
	Seed int64
	// Workers bounds the goroutines sharding the trials; <= 0 selects
	// runtime.GOMAXPROCS(0). Ignored (forced sequential) when Rng is set.
	Workers int
}

// MCResult summarises the sampled distribution of the column output error
// rate.
type MCResult struct {
	Mean, Std float64
	// P50, P95, P99 are linearly-interpolated percentiles of the |error|
	// distribution.
	P50, P95, P99 float64
	// Max is the largest sampled |error|.
	Max    float64
	Trials int
}

// mcShardSize is the number of consecutive trials one pool task runs. The
// grouping only amortises per-task scratch allocations — results never
// depend on it, because every trial re-seeds its own stream.
const mcShardSize = 64

// mcSeq numbers Monte-Carlo runs process-wide for journal correlation ids.
var mcSeq atomic.Int64

// emitTrialEvent journals one mc_trial outcome, stamped with the enclosing
// run span's trace/span IDs from ctx. NaN cannot be JSON-encoded, so a
// degenerate trial is flagged instead of carrying its sample value.
func emitTrialEvent(ctx context.Context, runID string, t int, absErr float64, ok bool) {
	data := map[string]any{"trial": t}
	if ok {
		data["abs_err"] = absErr
	} else {
		data["degenerate"] = true
	}
	telemetry.EmitEventCtx(ctx, telemetry.EvMCTrial, runID, data)
}

// trialSeed derives trial t's generator seed from the base seed with the
// splitmix64 finalizer, decorrelating neighbouring trials.
func trialSeed(base int64, t int) int64 {
	z := uint64(base) + (uint64(t)+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// mcScratch is the per-worker reusable state of the trial loop.
type mcScratch struct {
	rIdeal, vin []float64
}

func newMCScratch(rows int) *mcScratch {
	return &mcScratch{rIdeal: make([]float64, rows), vin: make([]float64, rows)}
}

// trial runs one Monte-Carlo sample: draw random inputs and a random level
// population for one representative column, compute the loaded analog
// output with deviated cell resistances (variation plus the non-linear
// operating-point shift plus the lumped wire term), and compare it against
// the ideal fixed-point result. Returns the |relative error| and ok=false
// for the degenerate all-zero-input case.
func (s *mcScratch) trial(p crossbar.Params, sigma, gs, wire float64, rng *rand.Rand) (float64, bool, error) {
	for i := range s.vin {
		s.vin[i] = p.VDrive * rng.Float64()
	}
	numIdl, denIdl := 0.0, gs
	numAct, denAct := 0.0, gs
	for m := 0; m < p.Rows; m++ {
		lvl := rng.Intn(p.Dev.Levels())
		r, err := p.Dev.LevelResistance(lvl)
		if err != nil {
			return 0, false, err
		}
		s.rIdeal[m] = r
		g := 1 / r
		numIdl += g * s.vin[m]
		denIdl += g
	}
	vIdl := numIdl / denIdl
	// Actual: operating-point shift, variation, and the average lumped
	// wire term shared across the column's cells.
	for m := 0; m < p.Rows; m++ {
		vCell := s.vin[m] - vIdl
		if vCell < 0 {
			vCell = 0
		}
		rAct := p.Dev.EffectiveR(vCell, s.rIdeal[m])
		rAct *= 1 + sigma*(2*rng.Float64()-1)
		rAct += wire / 2 // average cell position sees half the worst-corner wire term
		g := 1 / rAct
		numAct += g * s.vin[m]
		denAct += g
	}
	vAct := numAct / denAct
	if vIdl == 0 {
		return 0, false, nil
	}
	return math.Abs((vIdl - vAct) / vIdl), true, nil
}

// MonteCarlo samples the crossbar output error statistically. Where Eval
// gives closed-form average/worst cases, MonteCarlo gives the distribution
// between them — the statistical extension follow-on platforms (MNSIM 2.0)
// added. It is MonteCarloContext with a background context.
func MonteCarlo(p crossbar.Params, opt MCOptions) (MCResult, error) {
	return MonteCarloContext(context.Background(), p, opt)
}

// MonteCarloContext is MonteCarlo with a caller-supplied context.
//
// Trials shard across a bounded worker pool (MCOptions.Workers). In the
// default seeded mode each trial draws from its own deterministic stream
// (see MCOptions.Seed), and per-trial results land in an index-addressed
// slice, so the returned MCResult is bit-identical for every worker count.
// Cancelling ctx aborts the run with a wrapped ctx.Err().
func MonteCarloContext(ctx context.Context, p crossbar.Params, opt MCOptions) (MCResult, error) {
	if err := p.Validate(); err != nil {
		return MCResult{}, err
	}
	if opt.Trials < 1 {
		return MCResult{}, fmt.Errorf("accuracy: Monte-Carlo needs at least 1 trial")
	}
	if opt.Sigma < 0 || opt.Sigma > 0.5 {
		return MCResult{}, fmt.Errorf("accuracy: sigma %g outside [0,0.5]", opt.Sigma)
	}
	// The run span rides ctx into the pooled trial workers (pool.Run derives
	// task contexts from its caller's, preserving context values), so
	// mc_trial events and any nested spans chain under it.
	ctx, sp := telemetry.StartSpan(ctx, "accuracy.montecarlo")
	defer func() {
		if d := sp.End(); d > 0 {
			telMCSamplesSec.Set(float64(opt.Trials) / d.Seconds())
		}
		telMCTrials.Add(int64(opt.Trials))
	}()
	// Live trial progress for /progress and the -progress stderr line.
	prog := telemetry.StartPhase("mc.trials", int64(opt.Trials))
	defer prog.Finish()
	runID := ""
	if telemetry.JournalOn() {
		runID = fmt.Sprintf("mc-%d", mcSeq.Add(1))
	}
	gs := 1 / p.RSense
	wire := WireTerm(p.Rows, p.Cols, p.Wire.SegmentR)
	// samples[t] is trial t's |error|, NaN for a degenerate trial; the
	// index addressing keeps the result independent of completion order.
	samples := make([]float64, opt.Trials)
	if opt.Rng != nil {
		// Legacy shared-stream mode: every trial consumes the caller's one
		// generator in sequence, so the run is inherently sequential.
		s := newMCScratch(p.Rows)
		for t := 0; t < opt.Trials; t++ {
			if err := ctx.Err(); err != nil {
				return MCResult{}, fmt.Errorf("accuracy: Monte-Carlo aborted: %w", err)
			}
			v, ok, err := s.trial(p, opt.Sigma, gs, wire, opt.Rng)
			if err != nil {
				return MCResult{}, err
			}
			if runID != "" {
				emitTrialEvent(ctx, runID, t, v, ok)
			}
			if !ok {
				v = math.NaN()
			}
			samples[t] = v
			prog.Inc()
		}
	} else {
		seed := opt.Seed
		if seed == 0 {
			seed = DefaultSeed
		}
		shards := (opt.Trials + mcShardSize - 1) / mcShardSize
		err := pool.Run(ctx, shards, opt.Workers, func(tctx context.Context, shard int) error {
			s := newMCScratch(p.Rows)
			rng := rand.New(rand.NewSource(1))
			lo := shard * mcShardSize
			hi := lo + mcShardSize
			if hi > opt.Trials {
				hi = opt.Trials
			}
			for t := lo; t < hi; t++ {
				if err := tctx.Err(); err != nil {
					return err
				}
				rng.Seed(trialSeed(seed, t))
				v, ok, err := s.trial(p, opt.Sigma, gs, wire, rng)
				if err != nil {
					return err
				}
				if runID != "" {
					emitTrialEvent(tctx, runID, t, v, ok)
				}
				if !ok {
					v = math.NaN()
				}
				samples[t] = v
				prog.Inc()
			}
			return nil
		})
		if err != nil {
			return MCResult{}, fmt.Errorf("accuracy: Monte-Carlo aborted: %w", err)
		}
	}
	// Compact out the degenerate trials in index order, then sort.
	errs := compactFinite(samples)
	if len(errs) == 0 {
		return MCResult{}, fmt.Errorf("accuracy: all trials degenerate")
	}
	sort.Float64s(errs)
	return summarize(errs), nil
}

// compactFinite drops the NaN markers of degenerate trials in place,
// preserving index order.
func compactFinite(samples []float64) []float64 {
	errs := samples[:0]
	for _, v := range samples {
		if !math.IsNaN(v) {
			errs = append(errs, v)
		}
	}
	return errs
}

// summarize reduces the ascending-sorted error-rate samples to the
// MCResult moments and percentiles.
func summarize(errs []float64) MCResult {
	res := MCResult{Trials: len(errs)}
	sum, sumSq := 0.0, 0.0
	for _, e := range errs {
		sum += e
		sumSq += e * e
	}
	res.Mean = sum / float64(len(errs))
	res.Std = math.Sqrt(math.Max(0, sumSq/float64(len(errs))-res.Mean*res.Mean))
	res.P50 = percentile(errs, 0.50)
	res.P95 = percentile(errs, 0.95)
	res.P99 = percentile(errs, 0.99)
	res.Max = errs[len(errs)-1]
	return res
}

// percentile returns the q-th quantile of an ascending-sorted slice with
// linear interpolation between the two straddling order statistics. The
// previous truncating form int(q·(n−1)) biased P95/P99 low for small trial
// counts (e.g. P99 of 100 sorted samples returned sample 98 exactly).
func percentile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	h := q * float64(n-1)
	lo := int(h)
	if lo >= n-1 {
		return sorted[n-1]
	}
	frac := h - float64(lo)
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}
