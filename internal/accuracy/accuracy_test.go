package accuracy

import (
	"math"
	"testing"

	"mnsim/internal/crossbar"
	"mnsim/internal/device"
	"mnsim/internal/tech"
)

func refParams(size int, node int) crossbar.Params {
	return crossbar.New(size, size, device.RRAM(), tech.MustInterconnect(node))
}

func TestEvalRejectsInvalid(t *testing.T) {
	p := refParams(8, 45)
	p.Rows = 0
	if _, err := Eval(p); err == nil {
		t.Fatal("invalid params accepted")
	}
}

// Worst-case error grows with the interconnect resistance at fixed size
// (the Fig. 5 family of curves): smaller technology node -> larger r ->
// larger error.
func TestWorstErrorGrowsWithWireResistance(t *testing.T) {
	prev := -math.MaxFloat64
	for _, node := range []int{90, 45, 28, 18} {
		e, err := Eval(refParams(128, node))
		if err != nil {
			t.Fatal(err)
		}
		if e.Worst <= prev {
			t.Fatalf("node %d: worst error %v not above previous %v", node, e.Worst, prev)
		}
		prev = e.Worst
	}
}

// The error-versus-size curve must be U-shaped in magnitude: large crossbars
// suffer interconnect loss, small crossbars suffer the non-linear I–V
// deviation (Table V and its discussion in Section VII.C.2).
func TestErrorUShapeInSize(t *testing.T) {
	sizes := []int{8, 16, 32, 64, 128, 256}
	var mags []float64
	for _, s := range sizes {
		e, err := Eval(refParams(s, 45))
		if err != nil {
			t.Fatal(err)
		}
		mags = append(mags, math.Abs(e.Worst))
	}
	minIdx := 0
	for i, m := range mags {
		if m < mags[minIdx] {
			minIdx = i
		}
	}
	if sizes[minIdx] < 32 || sizes[minIdx] > 128 {
		t.Fatalf("error minimum at size %d (mags %v), want a mid size", sizes[minIdx], mags)
	}
	if mags[0] <= mags[minIdx] || mags[len(mags)-1] <= mags[minIdx] {
		t.Fatalf("curve not U-shaped: %v", mags)
	}
	// The signed single-corner value exposes the two mechanisms: at size 8
	// the non-linear overshoot dominates (negative — output above ideal),
	// at size 256 the interconnect loss dominates (positive).
	e8, err := WorstCaseColumn(refParams(8, 45))
	if err != nil {
		t.Fatal(err)
	}
	if e8 >= 0 {
		t.Errorf("size-8 corner error %v should be negative (non-linear overshoot)", e8)
	}
	e256, err := WorstCaseColumn(refParams(256, 45))
	if err != nil {
		t.Fatal(err)
	}
	if e256 <= 0 {
		t.Errorf("size-256 corner error %v should be positive (interconnect loss)", e256)
	}
	// The adversarial bound dominates the signed corner everywhere.
	for _, s := range sizes {
		e, _ := Eval(refParams(s, 45))
		c, _ := WorstCaseColumn(refParams(s, 45))
		if e.Worst < math.Abs(c)-1e-12 {
			t.Errorf("size %d: bound %v below corner %v", s, e.Worst, c)
		}
	}
}

func TestWorstCaseColumnRejectsInvalid(t *testing.T) {
	p := refParams(8, 45)
	p.Rows = 0
	if _, err := WorstCaseColumn(p); err == nil {
		t.Fatal("invalid params accepted")
	}
}

// Average-case magnitude is far below worst case at large sizes.
func TestAvgBelowWorstAtLargeSize(t *testing.T) {
	e, err := Eval(refParams(256, 28))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.Avg) >= math.Abs(e.Worst) {
		t.Fatalf("avg %v not below worst %v", e.Avg, e.Worst)
	}
}

func TestWireTerm(t *testing.T) {
	if got := WireTerm(4, 2, 0.5); math.Abs(got-5) > 1e-12 {
		t.Fatalf("WireTerm(4,2,0.5) = %v, want 5", got)
	}
	if WireTerm(64, 64, 0.5) >= WireTerm(128, 128, 0.5) {
		t.Fatal("wire term must grow with size")
	}
}

func TestEvalWithVariation(t *testing.T) {
	p := refParams(64, 45)
	base, err := Eval(p)
	if err != nil {
		t.Fatal(err)
	}
	withVar, err := EvalWithVariation(p, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(withVar.Worst) <= math.Abs(base.Worst) {
		t.Errorf("variation should enlarge worst error: %v vs %v", withVar.Worst, base.Worst)
	}
	if math.Abs(withVar.Avg) <= math.Abs(base.Avg) {
		t.Errorf("variation should enlarge avg error: %v vs %v", withVar.Avg, base.Avg)
	}
	// Sigma 0 reproduces the noise-free result exactly.
	zero, err := EvalWithVariation(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if zero != base {
		t.Errorf("sigma=0 differs from Eval: %+v vs %+v", zero, base)
	}
	if _, err := EvalWithVariation(p, -0.1); err == nil {
		t.Error("negative sigma should fail")
	}
	if _, err := EvalWithVariation(p, 0.9); err == nil {
		t.Error("huge sigma should fail")
	}
	bad := p
	bad.Rows = 0
	if _, err := EvalWithVariation(bad, 0.1); err == nil {
		t.Error("invalid params should fail")
	}
}

// Variation monotonicity: larger sigma, larger worst-case error (Eq. 16).
func TestVariationMonotone(t *testing.T) {
	p := refParams(64, 45)
	prev := -1.0
	for _, sigma := range []float64{0, 0.1, 0.2, 0.3} {
		e, err := EvalWithVariation(p, sigma)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(e.Worst) < prev {
			t.Fatalf("sigma %v: worst %v below previous %v", sigma, e.Worst, prev)
		}
		prev = math.Abs(e.Worst)
	}
}

func TestMerged(t *testing.T) {
	e := VoltageError{Worst: 0.1, Avg: 0.04}
	m := Merged(e, 16)
	if m.Worst != 0.1 {
		t.Errorf("worst should not take merge credit: %v", m.Worst)
	}
	if math.Abs(m.Avg-0.01) > 1e-12 {
		t.Errorf("avg = %v, want 0.01 (1/sqrt(16) reduction)", m.Avg)
	}
	if got := Merged(e, 0); got != e {
		t.Errorf("Q<1 should be identity: %+v", got)
	}
}

// The paper's worked example for Eq. 12–13: k=64, eps=10% gives a maximum
// digital deviation of 6 LSBs, i.e. 63 can be read as 57, and a maximum
// error rate of 6/63.
func TestPaperExampleEq12(t *testing.T) {
	if got := MaxDigitalDeviation(0.10, 64); got != 6 {
		t.Fatalf("MaxDigitalDeviation(0.1, 64) = %d, want 6", got)
	}
	want := 6.0 / 63.0
	if got := MaxErrorRate(0.10, 64); math.Abs(got-want) > 1e-12 {
		t.Fatalf("MaxErrorRate(0.1, 64) = %v, want %v", got, want)
	}
}

func TestDigitalDeviationEdgeCases(t *testing.T) {
	if MaxDigitalDeviation(0.5, 1) != 0 || MaxErrorRate(0.5, 0) != 0 {
		t.Error("k<2 should yield zero")
	}
	if AvgDigitalDeviation(0.5, 1) != 0 || AvgErrorRate(0.5, 1) != 0 {
		t.Error("k<2 should yield zero (avg)")
	}
	// eps=0 still rounds to 0.5 LSB -> floor 0 deviation.
	if MaxDigitalDeviation(0, 256) != 0 {
		t.Error("zero eps should give zero deviation")
	}
	// Negative eps uses magnitude.
	if MaxDigitalDeviation(-0.10, 64) != 6 {
		t.Error("negative eps should use magnitude")
	}
}

func TestAvgDigitalDeviation(t *testing.T) {
	// k=4, eps=0.5: deviations floor(0+.5)=0, floor(.5+.5)=1, floor(1+.5)=1,
	// floor(1.5+.5)=2 -> mean = 4/4 = 1.
	if got := AvgDigitalDeviation(0.5, 4); math.Abs(got-1) > 1e-12 {
		t.Fatalf("AvgDigitalDeviation(0.5,4) = %v, want 1", got)
	}
	if got := AvgErrorRate(0.5, 4); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("AvgErrorRate(0.5,4) = %v, want 1/3", got)
	}
	// Average deviation never exceeds the max deviation.
	for _, eps := range []float64{0.01, 0.05, 0.1, 0.3} {
		for _, k := range []int{16, 64, 256} {
			if AvgDigitalDeviation(eps, k) > float64(MaxDigitalDeviation(eps, k)) {
				t.Errorf("avg > max for eps=%v k=%d", eps, k)
			}
		}
	}
}

func TestPropagate(t *testing.T) {
	// (1+0.1)(1+0.2)-1 = 0.32
	if got := Propagate(0.1, 0.2); math.Abs(got-0.32) > 1e-12 {
		t.Fatalf("Propagate = %v, want 0.32", got)
	}
	if got := Propagate(0, 0.2); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("Propagate(0, .2) = %v", got)
	}
	// Propagation compounds: adding an input error can only grow the total.
	if Propagate(0.1, 0.2) <= Propagate(0, 0.2) {
		t.Error("propagation should compound")
	}
	// Signs are folded into magnitudes.
	if Propagate(-0.1, 0.2) != Propagate(0.1, 0.2) {
		t.Error("Propagate should use magnitudes")
	}
}

func TestEvalLayerTiling(t *testing.T) {
	p := refParams(128, 45)
	rep, err := EvalLayer(p, 2048, 1024, 256, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WorstRate <= 0 {
		t.Errorf("worst rate = %v", rep.WorstRate)
	}
	if rep.AvgRate > rep.WorstRate {
		t.Errorf("avg %v above worst %v", rep.AvgRate, rep.WorstRate)
	}
	// A layer smaller than the crossbar must be evaluated at its true size,
	// not the crossbar's: its error matches a crossbar-sized-to-layer eval.
	small, err := EvalLayer(p, 16, 16, 256, 0)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Eval(refParams(16, 45))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(small.Eps.Worst-exact.Worst) > 1e-12 {
		t.Errorf("small layer eps %v, want %v", small.Eps.Worst, exact.Worst)
	}
	if _, err := EvalLayer(p, 0, 4, 256, 0); err == nil {
		t.Error("zero rows should fail")
	}
	if _, err := EvalLayer(p, 4, 0, 256, 0); err == nil {
		t.Error("zero cols should fail")
	}
}

// An inherited input error strictly increases a layer's output error.
func TestEvalLayerInputErrorCompounds(t *testing.T) {
	p := refParams(128, 45)
	clean, err := EvalLayer(p, 512, 512, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	dirty, err := EvalLayer(p, 512, 512, 64, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if dirty.WorstRate <= clean.WorstRate {
		t.Fatalf("input error did not compound: %v vs %v", dirty.WorstRate, clean.WorstRate)
	}
}

func TestEvalNetworkAccumulates(t *testing.T) {
	p := refParams(128, 45)
	shapes := [][2]int{{128, 128}, {128, 128}, {128, 10}}
	reports, final, err := EvalNetwork(p, shapes, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("got %d reports", len(reports))
	}
	// Worst-path error cannot decrease across layers.
	for i := 1; i < len(reports); i++ {
		if reports[i].WorstRate < reports[i-1].WorstRate {
			t.Errorf("layer %d worst rate %v below layer %d rate %v",
				i, reports[i].WorstRate, i-1, reports[i-1].WorstRate)
		}
	}
	if final.Worst != reports[2].WorstRate || final.Avg != reports[2].AvgRate {
		t.Error("final rates should mirror the last layer")
	}
	if _, _, err := EvalNetwork(p, nil, 256); err == nil {
		t.Error("empty network should fail")
	}
	if _, _, err := EvalNetwork(p, [][2]int{{0, 1}}, 256); err == nil {
		t.Error("bad layer should fail")
	}
}

// Rectangular crossbars evaluate consistently: more columns means a longer
// worst wire path, so the error grows with either dimension.
func TestRectangularCrossbars(t *testing.T) {
	dev := device.RRAM()
	wire := tech.MustInterconnect(45)
	square, err := Eval(crossbar.New(128, 128, dev, wire))
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Eval(crossbar.New(128, 256, dev, wire))
	if err != nil {
		t.Fatal(err)
	}
	tall, err := Eval(crossbar.New(256, 128, dev, wire))
	if err != nil {
		t.Fatal(err)
	}
	if wide.Worst <= square.Worst {
		t.Errorf("wider crossbar error %v not above square %v", wide.Worst, square.Worst)
	}
	if tall.Worst <= square.Worst {
		t.Errorf("taller crossbar error %v not above square %v", tall.Worst, square.Worst)
	}
}
