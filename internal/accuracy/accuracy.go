// Package accuracy implements MNSIM's behaviour-level computing accuracy
// model (Section VI of the paper). The model replaces the circuit-level
// solve of the non-linear Kirchhoff equations with three approximations:
//
//  1. the non-linear I–V characteristic is decoupled — the operating point
//     is found with linear cells, then the actual resistance R_act at that
//     point is substituted back (Section VI.A);
//  2. interconnect lines are resistance-only (Section VI.B);
//  3. only the average and worst cases are evaluated (Section VI.C).
//
// The resulting voltage error rate ε feeds the digital deviation model
// (Eq. 12–14), the layer-to-layer propagation rule (Eq. 15), and the
// device-variation extension (Eq. 16).
//
// # Seeding contract
//
// The statistical extension (MonteCarlo) is deterministic by default: when
// MCOptions.Rng is nil, each call builds a fresh generator seeded with
// DefaultSeed, so two runs with identical options produce bit-identical
// results. Callers that want decorrelated runs must pass their own
// explicitly seeded *rand.Rand.
package accuracy

import (
	"fmt"
	"math"

	"mnsim/internal/crossbar"
)

// VoltageError holds the relative output-voltage error rate ε of a crossbar
// in the worst and average cases. Values are signed: positive means the
// actual output is below the ideal one.
type VoltageError struct {
	Worst float64
	Avg   float64
}

// Eval computes the crossbar output-voltage error rate per Section VI.C.
//
// Worst case: the adversarial bound |ε_wire| + |ε_nonlinear| over the
// all-R_min population on the farthest column at full-scale inputs. The two
// mechanisms are bounded separately because their signs depend on the
// column's weight pattern (sparsely-used columns overshoot through the
// non-linear I–V, dense columns undershoot through the wire loss), so a
// worst-case estimate cannot credit their coincidental cancellation — see
// WorstCaseColumn for the signed single-corner value that circuit-level
// simulation measures.
//
// Average case: cells at the harmonic mean of R_min/R_max, half the wire
// length, and half-scale inputs, signed (cancellation is expected on
// average).
//
// Each term follows the paper's evaluation: find the ideal operating point
// with linear cells (Eq. 9), substitute the non-linear actual resistance
// R_act at the resulting cell voltage, add the interconnect series term, and
// compare the loaded output against the ideal one (Eq. 11).
func Eval(p crossbar.Params) (VoltageError, error) {
	return evalSigma(p, 0)
}

func evalSigma(p crossbar.Params, sigma float64) (VoltageError, error) {
	if err := p.Validate(); err != nil {
		return VoltageError{}, err
	}
	wt := WireTerm(p.Rows, p.Cols, p.Wire.SegmentR)
	ic := columnError(p, p.Dev.RMin, wt, p.VDrive, 0, false)
	nl := worseOf(
		columnError(p, p.Dev.RMin, 0, p.VDrive, +sigma, true),
		columnError(p, p.Dev.RMin, 0, p.VDrive, -sigma, true))
	worst := math.Abs(ic) + math.Abs(nl)
	avg := worseOf(
		columnError(p, p.Dev.HarmonicMeanR(), wt/2, p.VDrive/2, +sigma, true),
		columnError(p, p.Dev.HarmonicMeanR(), wt/2, p.VDrive/2, -sigma, true))
	return VoltageError{Worst: worst, Avg: avg}, nil
}

// WorstCaseColumn returns the signed relative error of the canonical
// worst-case corner — every cell at R_min, the farthest column, full-scale
// inputs, wire and non-linearity acting together. This is the quantity the
// circuit-level solver measures in the Fig. 5 experiment; the fit test in
// this package holds the model to the paper's RMSE < 0.01 against it.
func WorstCaseColumn(p crossbar.Params) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	wt := WireTerm(p.Rows, p.Cols, p.Wire.SegmentR)
	return columnError(p, p.Dev.RMin, wt, p.VDrive, 0, true), nil
}

// WireTerm is the effective series interconnect resistance of the worst
// (farthest) column. The paper's Eq. 10 uses the per-cell path length
// (M+N)·r; a physical solve of the shared wire grid shows the drops of all
// cells sharing a wire accumulate, so the effective term is quadratic:
//
//	W = r · (M² + N²) / 2
//
// (for each axis, the far cell sees the summed drop of ~n/2 downstream cell
// currents over n segments). This form was fitted against the circuit-level
// solver exactly as the paper fits Eq. 11 against SPICE (Fig. 5); the fit
// test in this package keeps it honest.
func WireTerm(m, n int, r float64) float64 {
	return r * float64(m*m+n*n) / 2
}

// EvalWithVariation is Eval extended with the device-variation model of
// Eq. 16: the actual resistance is additionally deviated by the worst-case
// factor (1±σ), choosing the sign that enlarges the error.
func EvalWithVariation(p crossbar.Params, sigma float64) (VoltageError, error) {
	if sigma < 0 || sigma > 0.5 {
		return VoltageError{}, fmt.Errorf("accuracy: variation sigma %g outside [0,0.5]", sigma)
	}
	return evalSigma(p, sigma)
}

func worseOf(a, b float64) float64 {
	if math.Abs(a) >= math.Abs(b) {
		return a
	}
	return b
}

// columnError evaluates the signed relative error of one column:
// (V_idl − V_act) / V_idl with
//
//	V_idl = V·R_s·M / (R_state + R_s·M)                    (Eq. 9)
//	V_act = V·R_s·M / (R_act·(1±σ) + wire + R_s·M)
//
// where R_act is the device's secant resistance at the cell operating
// voltage found from the ideal solution (approximation 1); nonlinear=false
// freezes R_act at the calibrated value, isolating the interconnect term.
func columnError(p crossbar.Params, rState, wire, vIn, sigma float64, nonlinear bool) float64 {
	m := float64(p.Rows)
	rsM := p.RSense * m
	vIdl := vIn * rsM / (rState + rsM)
	vCell := vIn - vIdl
	rAct := rState
	if nonlinear {
		rAct = p.Dev.EffectiveR(vCell, rState)
	}
	rAct *= 1 + sigma
	vAct := vIn * rsM / (rAct + wire + rsM)
	return (vIdl - vAct) / vIdl
}

// Merged returns the effective error rate after the adder tree merges Q
// sub-crossbar results. The worst case takes no credit (all blocks deviate
// the same way); the average case treats block errors as independent and
// reduces by 1/√Q. Q < 1 is treated as 1.
func Merged(e VoltageError, q int) VoltageError {
	if q < 1 {
		q = 1
	}
	return VoltageError{Worst: e.Worst, Avg: e.Avg / math.Sqrt(float64(q))}
}

// MaxDigitalDeviation implements Eq. 12: with k quantization levels and
// voltage deviation rate eps, the worst-case read deviation in LSBs is
// ⌊(k−1.5)·ε + 0.5⌋.
func MaxDigitalDeviation(eps float64, k int) int {
	if k < 2 {
		return 0
	}
	return int(math.Floor((float64(k)-1.5)*math.Abs(eps) + 0.5))
}

// MaxErrorRate implements Eq. 13: the worst-case digital error rate
// ⌊(k−1.5)·ε + 0.5⌋ / (k−1).
func MaxErrorRate(eps float64, k int) float64 {
	if k < 2 {
		return 0
	}
	return float64(MaxDigitalDeviation(eps, k)) / float64(k-1)
}

// AvgDigitalDeviation implements Eq. 14: the mean read deviation in LSBs
// over all k levels, Σ_{i=0..k−1} ⌊i·ε + 0.5⌋ / k.
func AvgDigitalDeviation(eps float64, k int) float64 {
	if k < 2 {
		return 0
	}
	sum := 0.0
	e := math.Abs(eps)
	for i := 0; i < k; i++ {
		sum += math.Floor(float64(i)*e + 0.5)
	}
	return sum / float64(k)
}

// AvgErrorRate is the average digital deviation normalized to the full
// scale, AvgDigitalDeviation / (k−1).
func AvgErrorRate(eps float64, k int) float64 {
	if k < 2 {
		return 0
	}
	return AvgDigitalDeviation(eps, k) / float64(k-1)
}

// Propagate implements the multi-layer propagation rule of Eq. 15: a digital
// error rate δ1 arriving from the previous layer combines with the current
// layer's analog computing error ε2 into (1+δ1)(1+ε2) − 1, the worst-case
// bound on the compounded deviation.
func Propagate(delta1, eps2 float64) float64 {
	return (1+math.Abs(delta1))*(1+math.Abs(eps2)) - 1
}

// LayerReport summarises the accuracy estimate of one neuromorphic layer.
type LayerReport struct {
	// Eps is the merged analog voltage error rate of this layer's crossbars.
	Eps VoltageError
	// InDelta is the digital error rate inherited from the previous layer.
	InDelta float64
	// WorstRate and AvgRate are the layer's output digital error rates
	// (Eq. 13 and Eq. 14 normalized), after propagation.
	WorstRate float64
	AvgRate   float64
	// MaxDeviationLSB is the worst-case read deviation in LSBs (Eq. 12).
	MaxDeviationLSB int
}

// EvalLayer estimates one layer mapped onto crossbars of the given
// parameters: rows×cols is the weight-matrix shape, k the read-circuit
// quantization level count (2^ADC bits), and inDelta the digital error rate
// arriving from the previous layer (0 for the first layer).
func EvalLayer(p crossbar.Params, rows, cols, k int, inDelta float64) (LayerReport, error) {
	if rows <= 0 || cols <= 0 {
		return LayerReport{}, fmt.Errorf("accuracy: invalid layer shape %dx%d", rows, cols)
	}
	// A layer larger than one crossbar is tiled; the per-crossbar block
	// sizes bound the error, and the adder tree merges rowBlocks results.
	pb := p
	if rows < pb.Rows {
		pb.Rows = rows
	}
	if cols < pb.Cols {
		pb.Cols = cols
	}
	e, err := Eval(pb)
	if err != nil {
		return LayerReport{}, err
	}
	rowBlocks := (rows + p.Rows - 1) / p.Rows
	merged := Merged(e, rowBlocks)
	rep := LayerReport{Eps: merged, InDelta: inDelta}
	worstEps := Propagate(inDelta, merged.Worst)
	avgEps := Propagate(inDelta, merged.Avg)
	rep.MaxDeviationLSB = MaxDigitalDeviation(worstEps, k)
	rep.WorstRate = MaxErrorRate(worstEps, k)
	rep.AvgRate = AvgErrorRate(avgEps, k)
	return rep, nil
}

// EvalNetwork chains EvalLayer across a multi-layer network, feeding each
// layer's average digital error rate into the next (the propagation model of
// Section VI.C). Shapes is a list of (rows, cols) weight shapes; the return
// is the per-layer report list and the final output error rates.
func EvalNetwork(p crossbar.Params, shapes [][2]int, k int) ([]LayerReport, VoltageError, error) {
	if len(shapes) == 0 {
		return nil, VoltageError{}, fmt.Errorf("accuracy: empty network")
	}
	var reports []LayerReport
	deltaAvg, deltaWorst := 0.0, 0.0
	for i, s := range shapes {
		rep, err := EvalLayer(p, s[0], s[1], k, deltaAvg)
		if err != nil {
			return nil, VoltageError{}, fmt.Errorf("layer %d: %w", i, err)
		}
		// Track the worst-path rate separately: worst-case deltas compound
		// through the same propagation rule.
		repWorst, err := EvalLayer(p, s[0], s[1], k, deltaWorst)
		if err != nil {
			return nil, VoltageError{}, fmt.Errorf("layer %d: %w", i, err)
		}
		rep.WorstRate = repWorst.WorstRate
		rep.MaxDeviationLSB = repWorst.MaxDeviationLSB
		reports = append(reports, rep)
		deltaAvg = rep.AvgRate
		deltaWorst = rep.WorstRate
	}
	return reports, VoltageError{Worst: deltaWorst, Avg: deltaAvg}, nil
}
