package accuracy

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"runtime"
	"testing"
)

func TestMonteCarloBasics(t *testing.T) {
	p := refParams(64, 45)
	res, err := MonteCarlo(p, MCOptions{Trials: 500, Sigma: 0.1, Rng: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 500 {
		t.Fatalf("trials = %d", res.Trials)
	}
	if res.Mean <= 0 || res.Std < 0 {
		t.Fatalf("stats: %+v", res)
	}
	// Percentiles are ordered.
	if !(res.P50 <= res.P95 && res.P95 <= res.P99 && res.P99 <= res.Max) {
		t.Fatalf("percentiles out of order: %+v", res)
	}
}

// The sampled distribution must sit between the closed-form average and the
// adversarial worst case.
func TestMonteCarloBracketedByModel(t *testing.T) {
	p := refParams(64, 45)
	model, err := Eval(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MonteCarlo(p, MCOptions{Trials: 2000, Sigma: 0, Rng: rand.New(rand.NewSource(2))})
	if err != nil {
		t.Fatal(err)
	}
	if res.Max > model.Worst*3 {
		t.Fatalf("sampled max %v far above the worst-case bound %v", res.Max, model.Worst)
	}
	if res.Mean > model.Worst {
		t.Fatalf("sampled mean %v above the worst case %v", res.Mean, model.Worst)
	}
}

// Variation widens the distribution.
func TestMonteCarloVariationWidens(t *testing.T) {
	p := refParams(64, 45)
	tight, err := MonteCarlo(p, MCOptions{Trials: 1500, Sigma: 0, Rng: rand.New(rand.NewSource(3))})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := MonteCarlo(p, MCOptions{Trials: 1500, Sigma: 0.3, Rng: rand.New(rand.NewSource(3))})
	if err != nil {
		t.Fatal(err)
	}
	if wide.Std <= tight.Std {
		t.Fatalf("sigma=0.3 std %v not above sigma=0 std %v", wide.Std, tight.Std)
	}
	if wide.P99 <= tight.P99 {
		t.Fatalf("sigma=0.3 p99 %v not above sigma=0 p99 %v", wide.P99, tight.P99)
	}
}

func TestMonteCarloErrors(t *testing.T) {
	p := refParams(16, 45)
	rng := rand.New(rand.NewSource(1))
	if _, err := MonteCarlo(p, MCOptions{Trials: 0, Rng: rng}); err == nil {
		t.Error("0 trials accepted")
	}
	if _, err := MonteCarlo(p, MCOptions{Trials: 10, Sigma: 0.9, Rng: rng}); err == nil {
		t.Error("huge sigma accepted")
	}
	bad := p
	bad.Rows = 0
	if _, err := MonteCarlo(bad, MCOptions{Trials: 10, Rng: rng}); err == nil {
		t.Error("invalid params accepted")
	}
}

// Determinism: the same seed reproduces the same distribution.
func TestMonteCarloDeterministic(t *testing.T) {
	p := refParams(32, 45)
	a, err := MonteCarlo(p, MCOptions{Trials: 200, Sigma: 0.1, Rng: rand.New(rand.NewSource(9))})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MonteCarlo(p, MCOptions{Trials: 200, Sigma: 0.1, Rng: rand.New(rand.NewSource(9))})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

// The seeding contract: a nil Rng selects the per-trial stream family based
// on Seed (zero meaning DefaultSeed), so repeated runs are bit-identical to
// each other and to an explicit Seed: DefaultSeed run.
func TestMonteCarloNilRngDeterministic(t *testing.T) {
	p := refParams(32, 45)
	opt := MCOptions{Trials: 300, Sigma: 0.1}
	a, err := MonteCarlo(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MonteCarlo(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("nil-Rng runs differ: %+v vs %+v", a, b)
	}
	opt.Seed = DefaultSeed
	c, err := MonteCarlo(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a != c {
		t.Fatalf("zero Seed does not match explicit DefaultSeed: %+v vs %+v", a, c)
	}
	opt.Seed = DefaultSeed + 1
	d, err := MonteCarlo(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a == d {
		t.Fatal("different seeds produced identical distributions")
	}
}

// Parallel determinism: the seeded per-trial streams make the result a pure
// function of (options, trial index), so every worker count yields the same
// MCResult bit for bit.
func TestMonteCarloParallelDeterminism(t *testing.T) {
	p := refParams(32, 45)
	// 333 trials is deliberately not a multiple of the shard size.
	ref, err := MonteCarlo(p, MCOptions{Trials: 333, Sigma: 0.1, Seed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		got, err := MonteCarlo(p, MCOptions{Trials: 333, Sigma: 0.1, Seed: 7, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got != ref {
			t.Errorf("workers=%d: %+v differs from sequential %+v", workers, got, ref)
		}
	}
}

func TestMonteCarloCancelled(t *testing.T) {
	p := refParams(32, 45)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MonteCarloContext(ctx, p, MCOptions{Trials: 500, Sigma: 0.1, Workers: 4}); !errors.Is(err, context.Canceled) {
		t.Fatalf("seeded mode: want context.Canceled, got %v", err)
	}
	if _, err := MonteCarloContext(ctx, p, MCOptions{Trials: 500, Sigma: 0.1, Rng: rand.New(rand.NewSource(1))}); !errors.Is(err, context.Canceled) {
		t.Fatalf("legacy Rng mode: want context.Canceled, got %v", err)
	}
}

// Golden checks of the interpolated percentiles on tiny sorted slices.
func TestPercentileInterpolation(t *testing.T) {
	cases := []struct {
		sorted []float64
		q      float64
		want   float64
	}{
		{[]float64{3}, 0.99, 3},
		{[]float64{1, 2}, 0.5, 1.5},
		{[]float64{0, 10}, 0.95, 9.5},
		{[]float64{1, 2, 3, 4}, 0.5, 2.5},
		{[]float64{0, 1, 2, 3, 4}, 0.95, 3.8},
		{[]float64{0, 1, 2, 3, 4}, 1.0, 4},
		{[]float64{0, 1, 2, 3, 4}, 0.0, 0},
	}
	for _, c := range cases {
		if got := percentile(c.sorted, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("percentile(%v, %v) = %v, want %v", c.sorted, c.q, got, c.want)
		}
	}
}
