package accuracy

import (
	"math/rand"
	"testing"
)

func TestMonteCarloBasics(t *testing.T) {
	p := refParams(64, 45)
	res, err := MonteCarlo(p, MCOptions{Trials: 500, Sigma: 0.1, Rng: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 500 {
		t.Fatalf("trials = %d", res.Trials)
	}
	if res.Mean <= 0 || res.Std < 0 {
		t.Fatalf("stats: %+v", res)
	}
	// Percentiles are ordered.
	if !(res.P50 <= res.P95 && res.P95 <= res.P99 && res.P99 <= res.Max) {
		t.Fatalf("percentiles out of order: %+v", res)
	}
}

// The sampled distribution must sit between the closed-form average and the
// adversarial worst case.
func TestMonteCarloBracketedByModel(t *testing.T) {
	p := refParams(64, 45)
	model, err := Eval(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MonteCarlo(p, MCOptions{Trials: 2000, Sigma: 0, Rng: rand.New(rand.NewSource(2))})
	if err != nil {
		t.Fatal(err)
	}
	if res.Max > model.Worst*3 {
		t.Fatalf("sampled max %v far above the worst-case bound %v", res.Max, model.Worst)
	}
	if res.Mean > model.Worst {
		t.Fatalf("sampled mean %v above the worst case %v", res.Mean, model.Worst)
	}
}

// Variation widens the distribution.
func TestMonteCarloVariationWidens(t *testing.T) {
	p := refParams(64, 45)
	tight, err := MonteCarlo(p, MCOptions{Trials: 1500, Sigma: 0, Rng: rand.New(rand.NewSource(3))})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := MonteCarlo(p, MCOptions{Trials: 1500, Sigma: 0.3, Rng: rand.New(rand.NewSource(3))})
	if err != nil {
		t.Fatal(err)
	}
	if wide.Std <= tight.Std {
		t.Fatalf("sigma=0.3 std %v not above sigma=0 std %v", wide.Std, tight.Std)
	}
	if wide.P99 <= tight.P99 {
		t.Fatalf("sigma=0.3 p99 %v not above sigma=0 p99 %v", wide.P99, tight.P99)
	}
}

func TestMonteCarloErrors(t *testing.T) {
	p := refParams(16, 45)
	rng := rand.New(rand.NewSource(1))
	if _, err := MonteCarlo(p, MCOptions{Trials: 0, Rng: rng}); err == nil {
		t.Error("0 trials accepted")
	}
	if _, err := MonteCarlo(p, MCOptions{Trials: 10, Sigma: 0.9, Rng: rng}); err == nil {
		t.Error("huge sigma accepted")
	}
	bad := p
	bad.Rows = 0
	if _, err := MonteCarlo(bad, MCOptions{Trials: 10, Rng: rng}); err == nil {
		t.Error("invalid params accepted")
	}
}

// Determinism: the same seed reproduces the same distribution.
func TestMonteCarloDeterministic(t *testing.T) {
	p := refParams(32, 45)
	a, err := MonteCarlo(p, MCOptions{Trials: 200, Sigma: 0.1, Rng: rand.New(rand.NewSource(9))})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MonteCarlo(p, MCOptions{Trials: 200, Sigma: 0.1, Rng: rand.New(rand.NewSource(9))})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

// The seeding contract: a nil Rng selects a fresh generator seeded with
// DefaultSeed, so repeated runs are bit-identical to each other and to an
// explicit DefaultSeed generator.
func TestMonteCarloNilRngDeterministic(t *testing.T) {
	p := refParams(32, 45)
	opt := MCOptions{Trials: 300, Sigma: 0.1}
	a, err := MonteCarlo(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MonteCarlo(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("nil-Rng runs differ: %+v vs %+v", a, b)
	}
	opt.Rng = rand.New(rand.NewSource(DefaultSeed))
	c, err := MonteCarlo(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a != c {
		t.Fatalf("nil Rng does not match explicit DefaultSeed: %+v vs %+v", a, c)
	}
}
