// Package bench is the benchmark result pipeline: it parses `go test
// -bench` text output into a stable JSON document (the committed
// BENCH_*.json baselines), summarises repeated -count runs per metric
// (median plus min/max/stddev spread), assembles per-benchmark time
// series across a sequence of baselines (trend), and performs
// noise-aware regression gating of a fresh run against a committed
// baseline (gate).
//
// The package is pure — no clocks, no randomness, no printing — so every
// derived document is a deterministic function of its inputs.
package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Stat summarises one metric's samples across a benchmark's -count runs.
type Stat struct {
	Median float64 `json:"median"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	// Stddev is the population standard deviation across runs (zero for a
	// single run): the spread signal the gate's noise reasoning keys off.
	Stddev float64 `json:"stddev"`
}

// Bench is the aggregated result of one benchmark across its -count runs.
// NsPerOp and Metrics carry the medians (the schema the first baselines
// committed); NsStat and MetricStats add the full spread and are absent
// from documents written before the stats schema, so readers treat them
// as optional.
type Bench struct {
	Name string `json:"name"`
	// Runs is how many result lines were aggregated (the -count value).
	Runs int `json:"runs"`
	// NsPerOp is the median ns/op across runs.
	NsPerOp float64 `json:"ns_per_op"`
	// NsStat is the ns/op spread across runs.
	NsStat *Stat `json:"ns_stat,omitempty"`
	// Metrics holds the median of every other reported unit keyed by its
	// unit string, e.g. "newton-iters/op", "cg-iters/op", "flops/op".
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// MetricStats holds the spread of every unit in Metrics.
	MetricStats map[string]Stat `json:"metric_stats,omitempty"`
}

// Doc is the benchmark document: what mnsim-bench json emits and what the
// BENCH_*.json baselines contain.
type Doc struct {
	GoOS       string  `json:"goos"`
	GoArch     string  `json:"goarch"`
	Benchmarks []Bench `json:"benchmarks"`
}

// Find returns the benchmark with the given name, or nil.
func (d *Doc) Find(name string) *Bench {
	for i := range d.Benchmarks {
		if d.Benchmarks[i].Name == name {
			return &d.Benchmarks[i]
		}
	}
	return nil
}

// MinNs returns the fastest observed ns/op — the min-of-runs statistic the
// gate compares, which is robust to one-sided scheduling noise (a run can
// only be slowed down by interference, never sped up). Documents from the
// pre-stats schema carry no spread; the median is the best available
// stand-in there.
func (b *Bench) MinNs() float64 {
	if b.NsStat != nil {
		return b.NsStat.Min
	}
	return b.NsPerOp
}

// sampleSet accumulates per-unit samples of one benchmark.
type sampleSet struct {
	name    string
	byUnit  map[string][]float64
	units   []string
	numRuns int
}

// Parse reads `go test -bench` output and aggregates every benchmark line.
// Non-benchmark lines (goos/pkg headers, PASS, ok) are ignored.
func Parse(r io.Reader) (*Doc, error) {
	sets := map[string]*sampleSet{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iteration count, then (value, unit) pairs.
		if len(fields) < 4 || (len(fields)-2)%2 != 0 {
			continue
		}
		name := trimProcSuffix(fields[0])
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue
		}
		set := sets[name]
		if set == nil {
			set = &sampleSet{name: name, byUnit: map[string][]float64{}}
			sets[name] = set
			order = append(order, name)
		}
		parsedAny := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bench: bad value %q in line %q", fields[i], line)
			}
			unit := fields[i+1]
			if _, seen := set.byUnit[unit]; !seen {
				set.units = append(set.units, unit)
			}
			set.byUnit[unit] = append(set.byUnit[unit], v)
			parsedAny = true
		}
		if parsedAny {
			set.numRuns++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("bench: no benchmark lines in input")
	}
	doc := &Doc{GoOS: runtime.GOOS, GoArch: runtime.GOARCH}
	for _, name := range order {
		set := sets[name]
		b := Bench{Name: name, Runs: set.numRuns}
		for _, unit := range set.units {
			st := summarize(set.byUnit[unit])
			if unit == "ns/op" {
				b.NsPerOp = st.Median
				b.NsStat = &st
				continue
			}
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
				b.MetricStats = map[string]Stat{}
			}
			b.Metrics[unit] = st.Median
			b.MetricStats[unit] = st
		}
		doc.Benchmarks = append(doc.Benchmarks, b)
	}
	return doc, nil
}

// Load reads a benchmark document from a JSON file.
func Load(path string) (*Doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Doc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("bench: %s: no benchmarks", path)
	}
	return &doc, nil
}

// trimProcSuffix strips the trailing GOMAXPROCS marker ("-8") go test
// appends to benchmark names, so baselines compare across machines.
func trimProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// summarize computes the per-metric spread across runs.
func summarize(vals []float64) Stat {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	n := len(s)
	st := Stat{Min: s[0], Max: s[n-1]}
	if n%2 == 1 {
		st.Median = s[n/2]
	} else {
		st.Median = (s[n/2-1] + s[n/2]) / 2
	}
	mean := 0.0
	for _, v := range s {
		mean += v
	}
	mean /= float64(n)
	variance := 0.0
	for _, v := range s {
		d := v - mean
		variance += d * d
	}
	st.Stddev = math.Sqrt(variance / float64(n))
	return st
}
