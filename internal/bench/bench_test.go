package bench

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: mnsim/internal/circuit
cpu: Test CPU @ 2.00GHz
BenchmarkSolve/16x16-8         	       1	  1200000 ns/op	        12.00 newton-iters/op	       345.0 cg-iters/op
BenchmarkSolve/16x16-8         	       1	  1100000 ns/op	        12.00 newton-iters/op	       340.0 cg-iters/op
BenchmarkSolve/16x16-8         	       1	  1300000 ns/op	        12.00 newton-iters/op	       350.0 cg-iters/op
BenchmarkSolve/64x64-8         	       1	  9000000 ns/op	        14.00 newton-iters/op	       900.0 cg-iters/op
PASS
ok  	mnsim/internal/circuit	0.123s
pkg: mnsim/internal/dse
BenchmarkExplore/workers=4-8   	       1	  5000000 ns/op
PASS
ok  	mnsim/internal/dse	0.456s
`

func TestParseStats(t *testing.T) {
	doc, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[0]
	if b.Name != "BenchmarkSolve/16x16" || b.Runs != 3 {
		t.Fatalf("header parsed wrong: %+v", b)
	}
	if b.NsPerOp != 1.2e6 {
		t.Errorf("ns/op median = %g, want 1.2e6", b.NsPerOp)
	}
	if b.NsStat == nil {
		t.Fatal("no ns/op spread")
	}
	if b.NsStat.Min != 1.1e6 || b.NsStat.Max != 1.3e6 {
		t.Errorf("ns spread = %+v, want min 1.1e6 max 1.3e6", b.NsStat)
	}
	// Samples 1.1e6/1.2e6/1.3e6: population stddev = sqrt(2/3)·1e5.
	if want := math.Sqrt(2.0/3.0) * 1e5; math.Abs(b.NsStat.Stddev-want) > 1e-6*want {
		t.Errorf("ns stddev = %g, want %g", b.NsStat.Stddev, want)
	}
	cg := b.MetricStats["cg-iters/op"]
	if cg.Median != 345 || cg.Min != 340 || cg.Max != 350 {
		t.Errorf("cg-iters spread = %+v", cg)
	}
	// A deterministic metric has zero spread.
	if nw := b.MetricStats["newton-iters/op"]; nw.Stddev != 0 || nw.Min != nw.Max {
		t.Errorf("newton-iters spread = %+v, want degenerate", nw)
	}
	// Single-run benchmark: spread collapses to the one sample.
	e := doc.Benchmarks[2]
	if e.NsStat == nil || e.NsStat.Min != 5e6 || e.NsStat.Stddev != 0 {
		t.Errorf("single-run spread = %+v", e.NsStat)
	}
	if e.Metrics != nil || e.MetricStats != nil {
		t.Errorf("metric-less bench grew metrics: %+v", e)
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok  pkg 0.1s\n")); err == nil {
		t.Error("input without benchmark lines accepted")
	}
}

func sampleDoc() *Doc {
	return &Doc{
		GoOS: "linux", GoArch: "amd64",
		Benchmarks: []Bench{
			{
				Name: "BenchmarkSolve/64x64", Runs: 3, NsPerOp: 100e6,
				NsStat:  &Stat{Median: 100e6, Min: 95e6, Max: 120e6, Stddev: 10e6},
				Metrics: map[string]float64{"cg-iters/op": 1000, "flops/op": 5e8},
			},
			{
				Name: "BenchmarkExplore/workers=4", Runs: 3, NsPerOp: 2e6,
				NsStat: &Stat{Median: 2e6, Min: 1.9e6, Max: 2.2e6, Stddev: 1e5},
			},
		},
	}
}

// The gate's core contract: clean runs pass, injected regressions fail.
func TestGateSyntheticRegression(t *testing.T) {
	base := sampleDoc()

	// Identical run: no regressions.
	if deltas, n := Gate(base, sampleDoc(), GateOptions{}); n != 0 {
		t.Fatalf("identical run regressed %d times: %+v", n, deltas)
	}

	// Wall-time noise inside tolerance: min-of-runs 95e6 → 120e6 is +26%,
	// under the 40% default.
	noisy := sampleDoc()
	noisy.Benchmarks[0].NsStat = &Stat{Median: 125e6, Min: 120e6, Max: 140e6, Stddev: 9e6}
	if deltas, n := Gate(base, noisy, GateOptions{}); n != 0 {
		t.Fatalf("in-tolerance noise regressed: %+v", deltas)
	}

	// Synthetic wall-time regression: min-of-runs doubles.
	slow := sampleDoc()
	slow.Benchmarks[0].NsStat = &Stat{Median: 200e6, Min: 190e6, Max: 220e6, Stddev: 10e6}
	deltas, n := Gate(base, slow, GateOptions{})
	if n != 1 {
		t.Fatalf("2x slowdown: %d regressions, want 1: %+v", n, deltas)
	}
	var hit *Delta
	for i := range deltas {
		if deltas[i].Regression {
			hit = &deltas[i]
		}
	}
	if hit == nil || hit.Unit != "ns/op" || hit.Ratio < 1.9 {
		t.Fatalf("wrong regression flagged: %+v", hit)
	}

	// Synthetic deterministic-metric regression: +5% cg iterations trips
	// the tight 2% default even though wall time is unchanged.
	drift := sampleDoc()
	drift.Benchmarks[0].Metrics["cg-iters/op"] = 1050
	if _, n := Gate(base, drift, GateOptions{}); n != 1 {
		t.Fatalf("5%% metric drift: %d regressions, want 1", n)
	}

	// Improvements never fail the gate.
	fast := sampleDoc()
	fast.Benchmarks[0].NsStat.Min = 50e6
	fast.Benchmarks[0].Metrics["cg-iters/op"] = 900
	if deltas, n := Gate(base, fast, GateOptions{}); n != 0 {
		t.Fatalf("improvement regressed: %+v", deltas)
	}

	// A benchmark vanishing from the run is a regression.
	missing := sampleDoc()
	missing.Benchmarks = missing.Benchmarks[:1]
	if _, n := Gate(base, missing, GateOptions{}); n != 1 {
		t.Fatalf("missing benchmark: %d regressions, want 1", n)
	}

	// So is a vanished metric.
	nometric := sampleDoc()
	delete(nometric.Benchmarks[0].Metrics, "flops/op")
	if _, n := Gate(base, nometric, GateOptions{}); n != 1 {
		t.Fatalf("missing metric: %d regressions, want 1", n)
	}

	// Custom tolerances are respected: 10% metric headroom passes the 5%
	// drift that the default fails.
	if _, n := Gate(base, drift, GateOptions{MetricTol: 0.10}); n != 0 {
		t.Fatal("10% metric tolerance still failed a 5% drift")
	}
}

// A zero baseline is an exact pin: committing allocs/op = 0 asserts the
// steady-state path never allocates, and the gate must fail ANY nonzero
// current value no matter how generous the tolerance, with a reason that
// names the pin rather than a nonsensical percentage-of-zero.
func TestGateZeroBaselinePinsMetric(t *testing.T) {
	zero := sampleDoc()
	zero.Benchmarks[0].Metrics["allocs/op"] = 0
	same := sampleDoc()
	same.Benchmarks[0].Metrics["allocs/op"] = 0
	if deltas, n := Gate(zero, same, GateOptions{}); n != 0 {
		t.Fatalf("zero-vs-zero regressed: %+v", deltas)
	}
	leaky := sampleDoc()
	leaky.Benchmarks[0].Metrics["allocs/op"] = 1
	deltas, n := Gate(zero, leaky, GateOptions{MetricTol: 0.50})
	if n != 1 {
		t.Fatalf("1 alloc against a zero pin: %d regressions, want 1", n)
	}
	var hit *Delta
	for i := range deltas {
		if deltas[i].Regression {
			hit = &deltas[i]
		}
	}
	if hit == nil || hit.Unit != "allocs/op" {
		t.Fatalf("wrong regression flagged: %+v", hit)
	}
	if !strings.Contains(hit.Reason, "pins allocs/op at zero") {
		t.Fatalf("zero-pin reason missing, got %q", hit.Reason)
	}
}

// Pre-stats baselines (no ns_stat) gate on the median via MinNs fallback.
func TestGatePreStatsBaseline(t *testing.T) {
	base := sampleDoc()
	base.Benchmarks[0].NsStat = nil
	cur := sampleDoc()
	if deltas, n := Gate(base, cur, GateOptions{}); n != 0 {
		t.Fatalf("pre-stats baseline regressed: %+v", deltas)
	}
	if base.Benchmarks[0].MinNs() != 100e6 {
		t.Fatalf("MinNs fallback = %g, want median", base.Benchmarks[0].MinNs())
	}
}

func writeDoc(t *testing.T, dir, name, benchName string, ns float64) string {
	t.Helper()
	doc := &Doc{GoOS: "linux", GoArch: "amd64", Benchmarks: []Bench{
		{Name: benchName, Runs: 1, NsPerOp: ns, Metrics: map[string]float64{"cg-iters/op": ns / 1000}},
	}}
	p := filepath.Join(dir, name)
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTrendOrderingAndSeries(t *testing.T) {
	dir := t.TempDir()
	// Written out of order, with a two-digit PR to defeat lexical sorting.
	p10 := writeDoc(t, dir, "BENCH_pr10.json", "BenchmarkSolve/64x64", 3e6)
	p4 := writeDoc(t, dir, "BENCH_pr4.json", "BenchmarkSolve/64x64", 1e6)
	p6 := writeDoc(t, dir, "BENCH_pr6.json", "BenchmarkSolve/64x64", 2e6)
	entries, err := LoadEntries([]string{p10, p4, p6})
	if err != nil {
		t.Fatal(err)
	}
	td := Trend(entries)
	if got, want := strings.Join(td.Labels, ","), "pr4,pr6,pr10"; got != want {
		t.Fatalf("label order %q, want %q", got, want)
	}
	if len(td.Series) != 1 {
		t.Fatalf("series = %+v, want 1", td.Series)
	}
	s := td.Series[0]
	if s.Name != "BenchmarkSolve/64x64" || len(s.Points) != 3 {
		t.Fatalf("series shape: %+v", s)
	}
	for i, want := range []float64{1e6, 2e6, 3e6} {
		if s.Points[i].NsPerOp != want {
			t.Errorf("point %d ns = %g, want %g", i, s.Points[i].NsPerOp, want)
		}
	}
	if s.Points[0].Metrics["cg-iters/op"] != 1000 {
		t.Errorf("point metrics lost: %+v", s.Points[0])
	}
}

func TestLoadErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Error("malformed JSON accepted")
	}
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{"goos":"linux","goarch":"amd64"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(empty); err == nil {
		t.Error("benchmark-less document accepted")
	}
}
