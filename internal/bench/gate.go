package bench

import (
	"fmt"
	"sort"
)

// GateOptions tunes the regression gate.
type GateOptions struct {
	// NsTol is the fractional slowdown tolerated on ns/op before it counts
	// as a regression. Wall time is compared min-of-runs against
	// min-of-runs: interference only ever slows a run down, so the minimum
	// is the least noisy estimate either side has, and the tolerance
	// absorbs the machine-to-machine spread that remains. Default 0.40 —
	// generous, because a shared CI runner is not a benchmarking rig.
	NsTol float64
	// MetricTol is the fractional increase tolerated on every other metric
	// (newton-iters/op, cg-iters/op, flops/op, B/op, ...). These are
	// deterministic in this codebase, so the default is tight: 0.02.
	MetricTol float64
}

func (o GateOptions) withDefaults() GateOptions {
	if o.NsTol <= 0 {
		o.NsTol = 0.40
	}
	if o.MetricTol <= 0 {
		o.MetricTol = 0.02
	}
	return o
}

// Delta is one gate comparison: a benchmark metric in the current run
// against the committed baseline.
type Delta struct {
	Bench string  `json:"bench"`
	Unit  string  `json:"unit"`
	Base  float64 `json:"base"`
	Cur   float64 `json:"cur"`
	// Ratio is cur/base (0 when the baseline value is 0).
	Ratio float64 `json:"ratio"`
	// Regression marks a tolerance-exceeding increase, or a benchmark that
	// disappeared from the current run.
	Regression bool `json:"regression,omitempty"`
	// Reason is the human-readable verdict for regressions.
	Reason string `json:"reason,omitempty"`
}

// Gate compares a current benchmark run against a baseline and returns
// every per-metric delta plus the number of regressions. Every benchmark
// in the baseline must be present in the current run — a vanished
// benchmark is itself a regression (a gate that silently stops measuring
// is worse than a slow one). Benchmarks only present in the current run
// are ignored: they are new coverage, gated once committed.
func Gate(base, cur *Doc, opt GateOptions) (deltas []Delta, regressions int) {
	opt = opt.withDefaults()
	for _, bb := range base.Benchmarks {
		cb := cur.Find(bb.Name)
		if cb == nil {
			deltas = append(deltas, Delta{
				Bench: bb.Name, Regression: true,
				Reason: "benchmark missing from current run",
			})
			regressions++
			continue
		}
		d := compare(bb.Name, "ns/op", bb.MinNs(), cb.MinNs(), opt.NsTol)
		if d.Regression {
			regressions++
		}
		deltas = append(deltas, d)
		for _, unit := range sortedKeys(bb.Metrics) {
			cv, ok := cb.Metrics[unit]
			if !ok {
				deltas = append(deltas, Delta{
					Bench: bb.Name, Unit: unit, Base: bb.Metrics[unit], Regression: true,
					Reason: "metric missing from current run",
				})
				regressions++
				continue
			}
			d := compare(bb.Name, unit, bb.Metrics[unit], cv, opt.MetricTol)
			if d.Regression {
				regressions++
			}
			deltas = append(deltas, d)
		}
	}
	return deltas, regressions
}

// compare judges one metric: only increases beyond tolerance regress — a
// decrease is an improvement, recorded in the delta but never failed on.
// A zero baseline is the strictest contract of all: it asserts the metric
// stays at exactly zero (the steady-state allocs/op of a warmed solver,
// say), so any nonzero current value regresses no matter the tolerance.
func compare(name, unit string, base, cur, tol float64) Delta {
	d := Delta{Bench: name, Unit: unit, Base: base, Cur: cur}
	if base > 0 {
		d.Ratio = cur / base
	}
	if cur > base*(1+tol) {
		d.Regression = true
		if base == 0 {
			d.Reason = fmt.Sprintf("baseline pins %s at zero; current run reports %.4g", unit, cur)
		} else {
			d.Reason = fmt.Sprintf("%.4g exceeds baseline %.4g by more than %g%%", cur, base, tol*100)
		}
	}
	return d
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
