package bench

import (
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// TrendPoint is one baseline's value of one benchmark.
type TrendPoint struct {
	// Label identifies the baseline, e.g. "pr4" for BENCH_pr4.json.
	Label   string  `json:"label"`
	NsPerOp float64 `json:"ns_per_op"`
	// MinNs is the fastest run where the baseline recorded a spread
	// (equal to NsPerOp for pre-stats baselines).
	MinNs   float64            `json:"min_ns"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// TrendSeries is one benchmark's trajectory across baselines.
type TrendSeries struct {
	Name   string       `json:"name"`
	Points []TrendPoint `json:"points"`
}

// TrendDoc is the mnsim-bench trend output: per-benchmark time series
// over an ordered sequence of committed baselines.
type TrendDoc struct {
	// Labels lists the baselines in series order.
	Labels []string      `json:"labels"`
	Series []TrendSeries `json:"series"`
}

// Entry pairs a baseline document with its label.
type Entry struct {
	Label string
	Doc   *Doc
}

// LoadEntries loads baseline files into labelled entries ordered for
// trending: labels derive from file names ("bench/BENCH_pr4.json" →
// "pr4") and sort by any trailing integer so pr10 follows pr9 rather
// than pr1 (lexical order is the tie-break for unnumbered labels).
func LoadEntries(paths []string) ([]Entry, error) {
	entries := make([]Entry, 0, len(paths))
	for _, p := range paths {
		doc, err := Load(p)
		if err != nil {
			return nil, err
		}
		entries = append(entries, Entry{Label: labelOf(p), Doc: doc})
	}
	sort.SliceStable(entries, func(i, j int) bool {
		ni, iok := trailingInt(entries[i].Label)
		nj, jok := trailingInt(entries[j].Label)
		if iok && jok && ni != nj {
			return ni < nj
		}
		return entries[i].Label < entries[j].Label
	})
	return entries, nil
}

// Trend assembles per-benchmark series across the entries, which are
// taken in the order given (LoadEntries orders them). Benchmarks appear
// in first-seen order; baselines missing a benchmark simply contribute no
// point, so series lengths record when coverage began and ended.
func Trend(entries []Entry) *TrendDoc {
	out := &TrendDoc{}
	idx := map[string]int{}
	for _, e := range entries {
		out.Labels = append(out.Labels, e.Label)
		for _, b := range e.Doc.Benchmarks {
			i, ok := idx[b.Name]
			if !ok {
				i = len(out.Series)
				idx[b.Name] = i
				out.Series = append(out.Series, TrendSeries{Name: b.Name})
			}
			out.Series[i].Points = append(out.Series[i].Points, TrendPoint{
				Label:   e.Label,
				NsPerOp: b.NsPerOp,
				MinNs:   b.MinNs(),
				Metrics: b.Metrics,
			})
		}
	}
	return out
}

// labelOf derives a short baseline label from a file path:
// "bench/BENCH_pr4.json" → "pr4"; unrecognised names keep their stem.
func labelOf(path string) string {
	base := filepath.Base(path)
	base = strings.TrimSuffix(base, filepath.Ext(base))
	return strings.TrimPrefix(base, "BENCH_")
}

// trailingInt extracts the integer suffix of a label ("pr12" → 12).
func trailingInt(s string) (int, bool) {
	i := len(s)
	for i > 0 && s[i-1] >= '0' && s[i-1] <= '9' {
		i--
	}
	if i == len(s) {
		return 0, false
	}
	n, err := strconv.Atoi(s[i:])
	return n, err == nil
}
