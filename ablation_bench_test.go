// Ablation benchmarks for the design choices DESIGN.md calls out: each
// bench evaluates a reference design with one mechanism swapped or removed
// and reports the delta as custom metrics.
package mnsim

import (
	"math"
	"testing"

	"mnsim/internal/accuracy"
	"mnsim/internal/crossbar"
	"mnsim/internal/device"
	"mnsim/internal/periph"
	"mnsim/internal/tech"
)

// BenchmarkAblationDecoder compares the computation-oriented decoder of
// Fig. 4(b) against the memory-oriented one: the NOR row costs area and one
// gate delay, the price of selecting all rows in one COMPUTE.
func BenchmarkAblationDecoder(b *testing.B) {
	n := tech.MustNode(45)
	for i := 0; i < b.N; i++ {
		mem, err := periph.Decoder(n, 128, false)
		if err != nil {
			b.Fatal(err)
		}
		comp, err := periph.Decoder(n, 128, true)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(comp.Area/mem.Area, "area_x")
			b.ReportMetric(comp.Latency/mem.Latency, "latency_x")
			b.ReportMetric(comp.DynamicEnergy/mem.DynamicEnergy, "compute_energy_x")
		}
	}
}

// BenchmarkAblationSignedMapping compares the two signed-weight mappings of
// Section III.C.1: two crossbars merged by subtractors versus paired
// columns in one crossbar.
func BenchmarkAblationSignedMapping(b *testing.B) {
	layer := []LayerDims{{Rows: 2048, Cols: 1024, Passes: 1}}
	for i := 0; i < b.N; i++ {
		two := largeBankDesign()
		two.TwoCrossbarSigned = true
		same := largeBankDesign()
		same.TwoCrossbarSigned = false
		aTwo, err := Build(&two, layer, [2]int{128, 128})
		if err != nil {
			b.Fatal(err)
		}
		aSame, err := Build(&same, layer, [2]int{128, 128})
		if err != nil {
			b.Fatal(err)
		}
		rTwo, err := aTwo.Evaluate()
		if err != nil {
			b.Fatal(err)
		}
		rSame, err := aSame.Evaluate()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rSame.AreaMM2/rTwo.AreaMM2, "same/two_area_x")
			b.ReportMetric(rSame.EnergyPerSample/rTwo.EnergyPerSample, "same/two_energy_x")
			b.ReportMetric(float64(aSame.TotalCrossbars())/float64(aTwo.TotalCrossbars()), "same/two_xbars_x")
		}
	}
}

// BenchmarkAblationNonlinearTerm removes the non-linear I–V term from the
// accuracy model (Vc → ∞) and reports the small-crossbar error with and
// without it: without the term the U-shape collapses into a monotone curve.
func BenchmarkAblationNonlinearTerm(b *testing.B) {
	wire := tech.MustInterconnect(45)
	for i := 0; i < b.N; i++ {
		full := device.RRAM()
		linearDev := device.RRAM()
		linearDev.NonlinearVc = 1e9
		eFull, err := accuracy.Eval(crossbar.New(8, 8, full, wire))
		if err != nil {
			b.Fatal(err)
		}
		eLin, err := accuracy.Eval(crossbar.New(8, 8, linearDev, wire))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(eFull.Worst*100, "size8_err%_full")
			b.ReportMetric(eLin.Worst*100, "size8_err%_linear")
			// The linear-device model must lose the small-size penalty.
			if eLin.Worst >= eFull.Worst {
				b.Fatalf("removing the non-linear term should shrink the size-8 error: %v vs %v", eLin.Worst, eFull.Worst)
			}
		}
	}
}

// BenchmarkAblationVariation sweeps the device-variation sigma of Eq. 16.
func BenchmarkAblationVariation(b *testing.B) {
	p := crossbar.New(64, 64, device.RRAM(), tech.MustInterconnect(45))
	for i := 0; i < b.N; i++ {
		for _, sigma := range []float64{0, 0.1, 0.2, 0.3} {
			e, err := accuracy.EvalWithVariation(p, sigma)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(e.Worst*100, "err%_sigma"+fmtSigma(sigma))
			}
		}
	}
}

func fmtSigma(s float64) string {
	switch s {
	case 0:
		return "0"
	case 0.1:
		return "10"
	case 0.2:
		return "20"
	default:
		return "30"
	}
}

// BenchmarkAblationAdderTree compares the binary adder tree of Fig. 1(c)
// against a single sequential accumulator over the same operand count.
func BenchmarkAblationAdderTree(b *testing.B) {
	n := tech.MustNode(45)
	const inputs, bits = 16, 8
	for i := 0; i < b.N; i++ {
		tree, err := periph.AdderTree(n, inputs, bits)
		if err != nil {
			b.Fatal(err)
		}
		adder, err := periph.Adder(n, bits+4)
		if err != nil {
			b.Fatal(err)
		}
		sequential := adder.Repeat(inputs - 1)
		if i == 0 {
			b.ReportMetric(tree.Latency/sequential.Latency, "tree/seq_latency_x")
			b.ReportMetric(tree.Area/sequential.Area, "tree/seq_area_x")
			if tree.Latency >= sequential.Latency {
				b.Fatal("the adder tree should be faster than sequential accumulation")
			}
			if tree.Area <= sequential.Area {
				b.Fatal("the adder tree should cost more area than one adder")
			}
		}
	}
}

// BenchmarkAblationLineBuffer compares the Fig. 1(f) pooling line buffer
// against buffering the full pre-pooling frame.
func BenchmarkAblationLineBuffer(b *testing.B) {
	n := tech.MustNode(45)
	const frameW, frameH, poolK, bits = 112, 112, 2, 8
	for i := 0; i < b.N; i++ {
		line, err := periph.LineBuffer(n, frameW*(poolK-1)+poolK, bits)
		if err != nil {
			b.Fatal(err)
		}
		full, err := periph.Register(n, bits)
		if err != nil {
			b.Fatal(err)
		}
		frame := full.Scale(frameW * frameH)
		if i == 0 {
			b.ReportMetric(frame.Area/line.Area, "fullframe/line_area_x")
			if frame.Area <= line.Area {
				b.Fatal("the line buffer should be far smaller than a full frame")
			}
		}
	}
}

// BenchmarkAblationInnerPipeline toggles the ISAAC-style inner-layer
// pipeline (the paper's future-work feature) on the VGG-16 conv1_2 bank.
func BenchmarkAblationInnerPipeline(b *testing.B) {
	layer := []LayerDims{{Rows: 576, Cols: 64, Passes: 224 * 224, PoolK: 2}}
	for i := 0; i < b.N; i++ {
		plain := largeBankDesign()
		plain.Neuron = periph.NeuronReLU
		piped := plain
		piped.InnerPipeline = true
		aPlain, err := Build(&plain, layer, [2]int{128, 128})
		if err != nil {
			b.Fatal(err)
		}
		aPiped, err := Build(&piped, layer, [2]int{128, 128})
		if err != nil {
			b.Fatal(err)
		}
		rPlain, err := aPlain.Evaluate()
		if err != nil {
			b.Fatal(err)
		}
		rPiped, err := aPiped.Evaluate()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			speed := rPlain.SampleLatency / rPiped.SampleLatency
			b.ReportMetric(speed, "sample_speedup_x")
			b.ReportMetric(rPiped.AreaMM2/rPlain.AreaMM2, "area_x")
			if speed <= 1 {
				b.Fatal("the inner pipeline should raise streaming throughput")
			}
		}
	}
}

// BenchmarkAblationMergedError quantifies the 1/sqrt(Q) average-case merge
// credit (the documented model choice for adder-tree statistics).
func BenchmarkAblationMergedError(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := accuracy.VoltageError{Worst: 0.08, Avg: 0.02}
		m := accuracy.Merged(e, 16)
		if i == 0 {
			b.ReportMetric(m.Avg/e.Avg, "avg_credit_x")
			if math.Abs(m.Avg/e.Avg-0.25) > 1e-12 {
				b.Fatal("1/sqrt(16) credit expected")
			}
			if m.Worst != e.Worst {
				b.Fatal("worst case must take no credit")
			}
		}
	}
}
