// Library micro-benchmarks: the throughput of the core engines downstream
// users call in loops (the behavioural evaluation, the explorer, the weight
// mapper, the functional simulator, and the circuit solver). These are not
// paper experiments — they document the cost of the library's own
// primitives.
package mnsim

import (
	"math/rand"
	"testing"

	"mnsim/internal/accuracy"
	"mnsim/internal/crossbar"
	"mnsim/internal/device"
	"mnsim/internal/funcsim"
	"mnsim/internal/mapper"
	"mnsim/internal/nn"
	"mnsim/internal/tech"
)

// BenchmarkEvaluateAccelerator measures one full build+evaluate of the
// large-bank accelerator — the inner loop of every design-space traversal.
func BenchmarkEvaluateAccelerator(b *testing.B) {
	d := largeBankDesign()
	for i := 0; i < b.N; i++ {
		a, err := Build(&d, largeBankLayer, [2]int{128, 128})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := a.Evaluate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAccuracyEval measures the closed-form accuracy model.
func BenchmarkAccuracyEval(b *testing.B) {
	p := crossbar.New(128, 128, device.RRAM(), tech.MustInterconnect(45))
	for i := 0; i < b.N; i++ {
		if _, err := accuracy.Eval(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMapper measures mapping a 512×512 weight matrix onto crossbars.
func BenchmarkMapper(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	w := make([][]float64, 512)
	for r := range w {
		w[r] = make([]float64, 512)
		for c := range w[r] {
			w[r][c] = rng.Float64()*2 - 1
		}
	}
	d := largeBankDesign()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mapper.Map(&d, w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFuncsimSample measures one functionally executed sample of a
// mapped 256-64-10 network.
func BenchmarkFuncsimSample(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	net, err := nn.RandomFCNet("bench", rng, 256, 64, 10)
	if err != nil {
		b.Fatal(err)
	}
	d := largeBankDesign()
	m, err := funcsim.NewMachine(&d, net)
	if err != nil {
		b.Fatal(err)
	}
	input := make([]float64, 256)
	for i := range input {
		input[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Run(input, funcsim.RunOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonteCarlo measures the statistical accuracy engine per 1000
// trials.
func BenchmarkMonteCarlo(b *testing.B) {
	p := crossbar.New(64, 64, device.RRAM(), tech.MustInterconnect(45))
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < b.N; i++ {
		if _, err := accuracy.MonteCarlo(p, accuracy.MCOptions{Trials: 1000, Sigma: 0.1, Rng: rng}); err != nil {
			b.Fatal(err)
		}
	}
}
