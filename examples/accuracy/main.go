// Accuracy demonstrates the behaviour-level computing-accuracy model
// against the built-in circuit-level solver: the error-versus-size U-curve
// of Table V, the digital deviation of Eq. 12–14, device variation
// (Eq. 16), and a functional inference with injected crossbar error.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mnsim/internal/accuracy"
	"mnsim/internal/crossbar"
	"mnsim/internal/device"
	"mnsim/internal/nn"
	"mnsim/internal/tech"
)

func main() {
	dev := device.RRAM()
	wire := tech.MustInterconnect(45)

	fmt.Println("worst-case output error rate vs crossbar size (45nm wires):")
	for _, size := range []int{8, 16, 32, 64, 128, 256} {
		p := crossbar.New(size, size, dev, wire)
		e, err := accuracy.Eval(p)
		if err != nil {
			log.Fatal(err)
		}
		corner, err := accuracy.WorstCaseColumn(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  size %4d: bound %6.2f%%  signed corner %+6.2f%%  avg %+6.2f%%\n",
			size, e.Worst*100, corner*100, e.Avg*100)
	}

	// Eq. 12-14: the paper's worked example (k=64 levels, eps=10%).
	fmt.Println("\ndigital deviation at k=64, eps=10% (the paper's example):")
	fmt.Printf("  max deviation: %d LSB (63 read as %d)\n",
		accuracy.MaxDigitalDeviation(0.10, 64), 63-accuracy.MaxDigitalDeviation(0.10, 64))
	fmt.Printf("  max error rate: %.4f, avg error rate: %.4f\n",
		accuracy.MaxErrorRate(0.10, 64), accuracy.AvgErrorRate(0.10, 64))

	// Eq. 16: device variation sweep.
	fmt.Println("\ndevice variation sweep (64x64 crossbar):")
	p := crossbar.New(64, 64, dev, wire)
	for _, sigma := range []float64{0, 0.1, 0.2, 0.3} {
		e, err := accuracy.EvalWithVariation(p, sigma)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  sigma %.0f%%: worst %6.2f%%\n", sigma*100, e.Worst*100)
	}

	// Functional inference with the model's error rate injected — the
	// JPEG-style approximate-computing application of Section VII.A.
	rng := rand.New(rand.NewSource(7))
	net, err := nn.RandomFCNet("jpeg", rng, 64, 16, 64)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := accuracy.EvalLayer(crossbar.New(64, 64, dev, wire), 64, 64, 256, 0)
	if err != nil {
		log.Fatal(err)
	}
	input := make([]float64, 64)
	for i := range input {
		input[i] = rng.Float64()
	}
	opt := nn.ForwardOptions{DataBits: 8, WeightBits: 4, Act: nn.Sigmoid}
	ideal, err := net.Forward(input, opt)
	if err != nil {
		log.Fatal(err)
	}
	opt.Deviate = nn.UniformDeviation(rep.Eps.Worst, rng)
	got, err := net.Forward(input, opt)
	if err != nil {
		log.Fatal(err)
	}
	acc, err := nn.RelativeAccuracy(ideal, got)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n64-16-64 network with eps=%.2f%% injected per layer: relative accuracy %.2f%%\n",
		rep.Eps.Worst*100, acc*100)
}
