// Vgg16 maps the 16-layer VGG network onto a memristor accelerator (the
// Section VII.D deep-CNN case study), prints the per-bank mapping (units,
// crossbars, line buffers), and evaluates the pipelined accelerator.
package main

import (
	"fmt"
	"log"

	"mnsim"

	"mnsim/internal/arch"
	"mnsim/internal/device"
	"mnsim/internal/periph"
	"mnsim/internal/pipesim"
	"mnsim/internal/tech"
)

func main() {
	net := mnsim.VGG16()
	layers, err := net.Dims()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d neuromorphic layers -> %d computation banks\n\n",
		net.Name, net.NeuromorphicLayers(), len(layers))

	d := mnsim.Design{
		CrossbarSize:      128, // the paper's area/energy/latency optimum
		Parallelism:       64,
		WeightPolarity:    2,
		TwoCrossbarSigned: true,
		WeightBits:        8,
		DataBits:          8,
		CMOS:              tech.MustNode(45),
		Wire:              tech.MustInterconnect(90),
		Dev:               device.RRAM(),
		ADC:               periph.ADCVariableSA,
		Neuron:            periph.NeuronReLU,
		AreaCoefficient:   arch.DefaultAreaCoefficient,
	}
	a, err := mnsim.Build(&d, layers, [2]int{128, 128})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("bank  weights        passes  pool  units  linebuf")
	for i, b := range a.Banks {
		fmt.Printf("%4d  %5dx%-5d  %6d  %4d  %5d  %7d\n",
			i, b.Layer.Rows, b.Layer.Cols, b.Layer.Passes, b.Layer.PoolK,
			b.Units, b.Layer.OutBufLen)
	}

	rep, err := a.Evaluate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntotal: %d units, %d crossbars\n", a.TotalUnits(), a.TotalCrossbars())
	fmt.Printf("area %.1f mm2, power %.1f W, %.3g J/sample\n",
		rep.AreaMM2, rep.Power, rep.EnergyPerSample)
	fmt.Printf("pipeline cycle %.3g s, sample latency %.3g s\n",
		rep.PipelineCycle, rep.SampleLatency)
	fmt.Printf("accumulated output error: %.2f%% worst, %.2f%% avg\n",
		rep.ErrorWorst*100, rep.ErrorAvg*100)

	// Deployment cost: programming all weights once through the controller.
	ctl := mnsim.Controller{Accel: a}
	prog := arch.ProgramNetwork(a)
	st, err := ctl.Run(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one-time weight programming: %.3g s, %.3g J (%d WRITE instructions)\n",
		st.Time, st.Energy, st.Instructions)

	// Discrete-event check of the pipeline: stream a small batch and see
	// which bank bottlenecks and how close the analytic cycle is.
	ps, err := pipesim.Run(a, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline simulation (16 samples): interval %.3g s (analytic %.3g s), bottleneck bank %d at %.0f%% utilisation\n",
		ps.SampleInterval, ps.AnalyticCycle, ps.Bottleneck, ps.Utilisation[ps.Bottleneck]*100)
}
