// Largebank reproduces the Section VII.C case study interactively: a
// 2048×1024 fully-connected layer explored over crossbar size, parallelism
// degree, and interconnect node, printing the per-target optima (Table IV)
// and the error/area/energy trade-off versus crossbar size (Table V).
package main

import (
	"fmt"
	"log"

	"mnsim"

	"mnsim/internal/arch"
	"mnsim/internal/device"
	"mnsim/internal/periph"
	"mnsim/internal/tech"
)

func main() {
	base := mnsim.Design{
		CrossbarSize:      128,
		WeightPolarity:    2,
		TwoCrossbarSigned: true,
		WeightBits:        4, // 4-bit signed weights (Section VII.C)
		DataBits:          8, // 8-bit signals
		CMOS:              tech.MustNode(45),
		Wire:              tech.MustInterconnect(45),
		Dev:               device.RRAM(),
		ADC:               periph.ADCVariableSA,
		Neuron:            periph.NeuronSigmoid,
		AreaCoefficient:   arch.DefaultAreaCoefficient,
	}
	layer := []mnsim.LayerDims{{Rows: 2048, Cols: 1024, Passes: 1}}

	cands, err := mnsim.Explore(base, layer, mnsim.DefaultSpace(),
		mnsim.ExploreOptions{ErrorLimit: 0.25})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("large computation bank: %d designs explored\n\n", len(cands))

	fmt.Println("optimal design per target (Table IV):")
	for _, obj := range mnsim.Objectives() {
		c := mnsim.Best(cands, obj)
		fmt.Printf("  %-8s -> crossbar %4d, p %3d, %2dnm wires: %8.3f mm2, %9.3g J, %9.3g s, err %5.2f%%\n",
			obj, c.CrossbarSize, c.Parallelism, c.WireNode,
			c.Report.AreaMM2, c.Report.EnergyPerSample, c.Report.PipelineCycle,
			c.Report.ErrorWorst*100)
	}

	fmt.Println("\nerror/area/energy trade-off vs crossbar size (Table V):")
	for _, size := range []int{256, 128, 64, 32, 16, 8} {
		var best *mnsim.Candidate
		for i := range cands {
			c := &cands[i]
			if c.CrossbarSize == size && (best == nil || c.Report.ErrorWorst < best.Report.ErrorWorst) {
				best = c
			}
		}
		if best == nil {
			continue
		}
		fmt.Printf("  size %4d: error %5.2f%%  area %8.3f mm2  energy %9.3g J\n",
			size, best.Report.ErrorWorst*100, best.Report.AreaMM2, best.Report.EnergyPerSample)
	}
}
