// Mapped demonstrates the full deployment loop: a trained (here synthetic)
// network is decomposed onto crossbars by the weight mapper, programmed
// through the controller's WRITE instructions, executed functionally the
// way the hardware computes (per-block analog MVM, signed merge, ADC
// quantization, adder tree), and its end-to-end accuracy under the
// behaviour-level error model is measured — alongside the Monte-Carlo
// distribution of the per-crossbar error.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mnsim/internal/accuracy"
	"mnsim/internal/arch"
	"mnsim/internal/crossbar"
	"mnsim/internal/device"
	"mnsim/internal/funcsim"
	"mnsim/internal/mapper"
	"mnsim/internal/nn"
	"mnsim/internal/periph"
	"mnsim/internal/tech"
)

func main() {
	d := &arch.Design{
		CrossbarSize:      64,
		WeightPolarity:    2,
		TwoCrossbarSigned: true,
		WeightBits:        4,
		DataBits:          8,
		CMOS:              tech.MustNode(45),
		Wire:              tech.MustInterconnect(45),
		Dev:               device.RRAM(),
		ADC:               periph.ADCVariableSA,
		Neuron:            periph.NeuronSigmoid,
		AreaCoefficient:   arch.DefaultAreaCoefficient,
	}
	rng := rand.New(rand.NewSource(42))
	net, err := nn.RandomFCNet("demo", rng, 96, 32, 10)
	if err != nil {
		log.Fatal(err)
	}

	// Map each layer and inspect the first image.
	img, err := mapper.Map(d, net.Weights[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("layer 0 (96x32) maps to %d blocks, %d programmed cells\n",
		len(img.Blocks), img.CellCount())
	recon, err := img.Reconstruct()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read-back check: w[0][0]=%.4f reconstructed as %.4f\n",
		net.Weights[0][0][0], recon[0][0])

	// Build the machine, program it, run samples.
	m, err := funcsim.NewMachine(d, net)
	if err != nil {
		log.Fatal(err)
	}
	ctl := arch.Controller{Accel: m.Accel}
	st, err := ctl.Run(arch.ProgramNetwork(m.Accel))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("programming: %.3g s, %.3g J\n", st.Time, st.Energy)

	inputs := make([][]float64, 8)
	for i := range inputs {
		inputs[i] = make([]float64, 96)
		for j := range inputs[i] {
			inputs[i][j] = rng.Float64()
		}
	}
	acc, err := m.Accuracy(inputs, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("end-to-end relative accuracy under the error model: %.2f%%\n", acc*100)

	// The Monte-Carlo view of one crossbar's error distribution.
	mc, err := accuracy.MonteCarlo(crossbar.New(64, 64, d.Dev, d.Wire),
		accuracy.MCOptions{Trials: 2000, Sigma: 0.1, Rng: rng})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("64x64 crossbar error (sigma=10%%): mean %.3f%%, p95 %.3f%%, p99 %.3f%%, max %.3f%%\n",
		mc.Mean*100, mc.P95*100, mc.P99*100, mc.Max*100)
}
