// Quickstart: simulate a small 3-layer fully-connected accelerator with the
// Table I default configuration and print its report.
package main

import (
	"fmt"
	"log"

	"mnsim"
)

func main() {
	cfg := mnsim.DefaultConfig()
	cfg.NetworkScale = []mnsim.LayerShape{
		{Rows: 784, Cols: 256}, // e.g. a 28×28-image classifier
		{Rows: 256, Cols: 128},
		{Rows: 128, Cols: 10},
	}
	cfg.CMOSTech = 45
	cfg.InterconnectTech = 45

	rep, err := mnsim.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("MNSIM quickstart — 784-256-128-10 fully-connected ANN")
	fmt.Printf("  area:              %.3f mm2\n", rep.AreaMM2)
	fmt.Printf("  power:             %.3f W\n", rep.Power)
	fmt.Printf("  energy per sample: %.3g J\n", rep.EnergyPerSample)
	fmt.Printf("  sample latency:    %.3g s\n", rep.SampleLatency)
	fmt.Printf("  pipeline cycle:    %.3g s\n", rep.PipelineCycle)
	fmt.Printf("  output error:      %.2f%% worst, %.2f%% avg\n",
		rep.ErrorWorst*100, rep.ErrorAvg*100)

	// The same configuration can be explored instead of point-simulated:
	d, layers, err := mnsim.DesignFromConfig(cfg)
	if err != nil {
		log.Fatal(err)
	}
	cands, err := mnsim.Explore(d, layers, mnsim.Space{
		CrossbarSizes: []int{64, 128, 256},
		Parallelisms:  []int{1, 16, 128},
		WireNodes:     []int{45, 28},
	}, mnsim.ExploreOptions{ErrorLimit: 0.25})
	if err != nil {
		log.Fatal(err)
	}
	best := mnsim.Best(cands, mnsim.MinEnergy)
	fmt.Printf("\nenergy-optimal design of %d explored: crossbar %d, p=%d, %dnm wires (%.3g J/sample)\n",
		len(cands), best.CrossbarSize, best.Parallelism, best.WireNode, best.Report.EnergyPerSample)
}
