// Relatedwork reproduces the Section VII.E scalability case studies: the
// PRIME FF-subarray (reference modules, customized connection) and the
// ISAAC tile (imported module costs, 22-stage inner pipeline) — Table VII.
// As the paper notes, the two rows are not comparable: the evaluated
// network scales differ.
package main

import (
	"fmt"
	"log"

	"mnsim"

	"mnsim/internal/arch"
	"mnsim/internal/custom"
	"mnsim/internal/device"
	"mnsim/internal/periph"
	"mnsim/internal/tech"
)

func main() {
	prime, err := mnsim.SimulatePRIME()
	if err != nil {
		log.Fatal(err)
	}
	isaac, err := mnsim.SimulateISAAC()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Table VII: simulation of PRIME and ISAAC")
	fmt.Println("work    CMOS   area(mm2)  energy/task  latency     accuracy")
	for _, r := range []mnsim.CaseStudy{prime, isaac} {
		fmt.Printf("%-6s  %2dnm   %8.3f  %9.3g J  %8.3g s  %6.2f%%\n",
			r.Name, r.CMOSTech, r.AreaMM2, r.EnergyPerTask, r.Latency, r.Accuracy*100)
	}
	fmt.Println("\n(the two rows evaluate different network scales and are not comparable)")

	// The third customization example of Fig. 2: the heterogeneous system
	// of Liu et al. where the accelerator computes only the synapse
	// function and the CPU handles the rest.
	d := &arch.Design{
		CrossbarSize:      128,
		WeightPolarity:    2,
		TwoCrossbarSigned: true,
		WeightBits:        4,
		DataBits:          8,
		CMOS:              tech.MustNode(65),
		Wire:              tech.MustInterconnect(45),
		Dev:               device.RRAM(),
		ADC:               periph.ADCVariableSA,
		Neuron:            periph.NeuronSigmoid,
		AreaCoefficient:   arch.DefaultAreaCoefficient,
	}
	het, err := custom.NewSynapseOnly(d, arch.LayerDims{Rows: 1024, Cols: 512, Passes: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFig. 2(c) heterogeneous customization (synapse-only accelerator, 1024x512 layer):\n")
	fmt.Printf("  accelerator part: %.3f mm2, %.3g s/pass (full bank: %.3f mm2, %.3g s)\n",
		het.Perf.Area*1e-6, het.Perf.Latency,
		het.Bank.PassPerf.Area*1e-6, het.Bank.PassPerf.Latency)
	fmt.Printf("  %d bits per pass shipped to the CPU for the neuron function\n", het.CPUTransferBits)
}
